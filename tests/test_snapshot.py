"""Snapshot/restore: bit-identity round-trips, corruption, compatibility.

The contract under test (ARCHITECTURE.md, "Elastic sharding & recovery"):

* ``restore(snapshot(engine))`` answers **every** query type bit-identically
  to the original — property-tested over random streams, shard counts, and
  both partition modes, including after further inserts post-restore;
* a snapshot that was tampered with (or torn) refuses to load with a typed
  :class:`~repro.errors.SnapshotError` naming the offending shard / file;
* a snapshot is only loadable into a **compatible** engine: shard count,
  partition mode, and hash seed must match (both widening 4→8 and
  narrowing 8→4 refuse), so a mismatch can never silently mis-partition.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from faultinject import corrupt_byte
from repro import Higgs, HiggsConfig, HiggsShardFactory, ShardedSummary, SnapshotConfig
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import ConfigurationError, ShardingError, SnapshotError
from repro.sharding import snapshot as snapshot_format
from repro.streams.edge import StreamEdge

# Small vertex universe to force edge repetition and cross-shard spread.
_vertices = st.integers(min_value=0, max_value=15).map(lambda i: f"v{i}")
_items = st.lists(
    st.tuples(_vertices, _vertices, st.integers(1, 9), st.integers(0, 300)),
    min_size=1, max_size=80)

FULL = (0, 10**9)


def _edges(items):
    return [StreamEdge(s, d, float(w), t)
            for s, d, w, t in sorted(items, key=lambda item: item[3])]


def _assert_identical(a: ShardedSummary, b: ShardedSummary, items) -> None:
    """Every query type must agree exactly between the two engines."""
    pairs = sorted({(s, d) for s, d, _, _ in items})
    vertices = sorted({v for s, d, _, _ in items for v in (s, d)})
    t_mid = max(t for _, _, _, t in items) // 2
    for window in (FULL, (0, t_mid)):
        for source, destination in pairs:
            assert a.edge_query(source, destination, *window) == \
                b.edge_query(source, destination, *window)
        for vertex in vertices:
            for direction in ("out", "in"):
                assert a.vertex_query(vertex, *window, direction) == \
                    b.vertex_query(vertex, *window, direction)
        assert a.subgraph_query(pairs, *window) == \
            b.subgraph_query(pairs, *window)
    assert a.shard_items() == b.shard_items()
    assert a.items_ingested == b.items_ingested


class TestRoundTripProperties:
    """Hypothesis: restore(snapshot(s)) is query-exact, then stays exact."""

    @given(items=_items, shards=st.integers(1, 5),
           partition_by=st.sampled_from(["source", "edge"]))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_bit_identical_all_query_types(self, items, shards,
                                                      partition_by):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            original = ShardedSummary(ExactTemporalGraph, shards=shards,
                                      partition_by=partition_by)
            original.insert_batch(_edges(items))
            original.snapshot(path)
            restored = ShardedSummary.restore(path)
            try:
                _assert_identical(original, restored, items)
                # Post-restore inserts must behave exactly as they would
                # have on the original: reinsert a shifted copy into both.
                extra = [StreamEdge(e.destination, e.source, e.weight + 1.0,
                                    e.timestamp + 301)
                         for e in _edges(items)]
                more = [(e.source, e.destination, e.weight, e.timestamp)
                        for e in extra] + list(items)
                original.insert_batch(extra)
                restored.insert_batch(extra)
                _assert_identical(original, restored, more)
            finally:
                original.close()
                restored.close()

    @given(items=_items)
    @settings(max_examples=10, deadline=None)
    def test_round_trip_higgs_shards(self, items):
        """The real HIGGS summary round-trips too (same estimates, exactly)."""
        factory = HiggsShardFactory(HiggsConfig(leaf_matrix_size=4,
                                                bucket_entries=2,
                                                fingerprint_bits=10,
                                                num_probes=2))
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            original = ShardedSummary(factory, shards=3)
            original.insert_batch(_edges(items))
            original.snapshot(path)
            restored = ShardedSummary.restore(path)
            try:
                _assert_identical(original, restored, items)
            finally:
                original.close()
                restored.close()


@pytest.fixture()
def snapshot_dir(small_stream):
    """A 4-shard Exact engine, its stream, and a written snapshot."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snap")
        engine = ShardedSummary(ExactTemporalGraph, shards=4)
        engine.insert_stream(small_stream)
        engine.snapshot(path)
        try:
            yield engine, path
        finally:
            engine.close()


class TestSnapshotFormat:
    """Manifest semantics: atomicity, checksums, typed refusals."""

    def test_snapshot_requires_a_destination(self):
        engine = ShardedSummary(ExactTemporalGraph, shards=2)
        with pytest.raises(SnapshotError, match="destination"):
            engine.snapshot()
        engine.close()

    def test_snapshot_uses_configured_directory(self, small_stream):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "auto")
            engine = ShardedSummary(
                ExactTemporalGraph, shards=2,
                snapshot=SnapshotConfig(directory=path))
            engine.insert_stream(small_stream)
            assert engine.snapshot() == path
            assert os.path.exists(os.path.join(path,
                                               snapshot_format.MANIFEST_NAME))
            engine.close()

    def test_snapshot_config_rejects_blank_directory(self):
        with pytest.raises(ConfigurationError):
            SnapshotConfig(directory="   ")

    def test_missing_manifest_refuses(self):
        with tempfile.TemporaryDirectory() as tmp, \
                pytest.raises(SnapshotError, match="manifest"):
            ShardedSummary.restore(os.path.join(tmp, "nothing"))

    @pytest.mark.faultinject
    def test_corrupt_shard_payload_names_the_shard(self, snapshot_dir):
        """One flipped byte in shard 2's payload → SnapshotError('shard 2')."""
        _, path = snapshot_dir
        corrupt_byte(os.path.join(path, snapshot_format.shard_payload_name(2)),
                     offset=7)
        with pytest.raises(SnapshotError, match="shard 2"):
            ShardedSummary.restore(path)

    @pytest.mark.faultinject
    def test_torn_manifest_refuses(self, snapshot_dir):
        _, path = snapshot_dir
        manifest = os.path.join(path, snapshot_format.MANIFEST_NAME)
        with open(manifest, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write(text[:len(text) // 2])  # torn mid-write
        with pytest.raises(SnapshotError, match="torn"):
            ShardedSummary.restore(path)

    @pytest.mark.faultinject
    def test_tampered_manifest_body_refuses(self, snapshot_dir):
        _, path = snapshot_dir
        manifest = os.path.join(path, snapshot_format.MANIFEST_NAME)
        with open(manifest, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write(text.replace('"items_total"', '"items_Total"', 1))
        with pytest.raises(SnapshotError, match="checksum"):
            ShardedSummary.restore(path)

    def test_verify_checksums_false_skips_payload_hashing(self, snapshot_dir):
        """Payload verification can be opted out (trusted local snapshots)."""
        engine, path = snapshot_dir
        # Rewrite shard 0's payload with different pickle bytes for the
        # same content: restore with verification must refuse, without
        # must succeed.
        import pickle
        payload_path = os.path.join(path, snapshot_format.shard_payload_name(0))
        with open(payload_path, "rb") as handle:
            target = pickle.loads(handle.read())
        with open(payload_path, "wb") as handle:
            handle.write(pickle.dumps(target, protocol=2))
        with pytest.raises(SnapshotError, match="shard 0"):
            ShardedSummary.restore(path)
        restored = ShardedSummary.restore(
            path, snapshot=SnapshotConfig(verify_checksums=False))
        assert restored.items_ingested == engine.items_ingested
        restored.close()


class TestConfigCompatibility:
    """restore/load refuse incompatible engines instead of mis-partitioning."""

    def test_load_4_shard_snapshot_into_8_shard_engine(self, snapshot_dir):
        _, path = snapshot_dir
        wider = ShardedSummary(ExactTemporalGraph, shards=8)
        with pytest.raises(ShardingError, match="num_shards 4 != 8"):
            wider.load_snapshot(path)
        wider.close()

    def test_load_8_shard_snapshot_into_4_shard_engine(self, small_stream):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            engine = ShardedSummary(ExactTemporalGraph, shards=8)
            engine.insert_stream(small_stream)
            engine.snapshot(path)
            engine.close()
            narrower = ShardedSummary(ExactTemporalGraph, shards=4)
            with pytest.raises(ShardingError, match="num_shards 8 != 4"):
                narrower.load_snapshot(path)
            narrower.close()

    def test_load_refuses_partition_mode_mismatch(self, snapshot_dir):
        _, path = snapshot_dir
        other = ShardedSummary(ExactTemporalGraph, shards=4,
                               partition_by="edge")
        with pytest.raises(ShardingError, match="partition_by"):
            other.load_snapshot(path)
        other.close()

    def test_load_refuses_hash_seed_mismatch(self, snapshot_dir):
        from repro import ShardingConfig
        _, path = snapshot_dir
        other = ShardedSummary(ExactTemporalGraph,
                               config=ShardingConfig(num_shards=4,
                                                     hash_seed=99))
        with pytest.raises(ShardingError, match="hash_seed"):
            other.load_snapshot(path)
        other.close()

    def test_load_snapshot_into_compatible_engine_replaces_state(
            self, snapshot_dir, small_stream):
        engine, path = snapshot_dir
        other = ShardedSummary(ExactTemporalGraph, shards=4)
        other.insert(u"unrelated", u"edge", 5.0, 1)
        other.load_snapshot(path)
        assert other.shard_items() == engine.shard_items()
        edge = next(iter(small_stream))
        assert other.edge_query(edge.source, edge.destination, *FULL) == \
            engine.edge_query(edge.source, edge.destination, *FULL)
        other.close()


class TestExecutorsAndFactories:
    """State is executor-agnostic; factories travel inside the snapshot."""

    def test_process_executor_round_trip(self, small_stream):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            original = ShardedSummary(ExactTemporalGraph, shards=2,
                                      executor="process")
            original.insert_stream(small_stream)
            original.snapshot(path)
            restored = ShardedSummary.restore(path)
            assert restored.executor_mode == "process"
            edges = list(small_stream)[:40]
            for edge in edges:
                assert original.edge_query(edge.source, edge.destination,
                                           *FULL) == \
                    restored.edge_query(edge.source, edge.destination, *FULL)
            original.close()
            restored.close()

    def test_restore_can_override_executor(self, snapshot_dir):
        """A serial snapshot restores onto worker threads (and vice versa)."""
        engine, path = snapshot_dir
        threaded = ShardedSummary.restore(path, executor="thread")
        assert threaded.executor_mode == "thread"
        assert threaded.items_ingested == engine.items_ingested
        threaded.close()

    def test_restore_without_embedded_factory_needs_one(self, small_stream):
        """A lambda factory cannot be pickled into the snapshot; restore
        must demand an explicit one and honour it when given."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            engine = ShardedSummary(lambda: ExactTemporalGraph(), shards=2)
            engine.insert_stream(small_stream)
            engine.snapshot(path)
            with pytest.raises(SnapshotError, match="factory"):
                ShardedSummary.restore(path)
            restored = ShardedSummary.restore(path,
                                              factory=ExactTemporalGraph)
            assert restored.items_ingested == engine.items_ingested
            engine.close()
            restored.close()

    def test_higgs_default_factory_round_trips_memory_model(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap")
            engine = ShardedSummary(shards=2)  # default HiggsShardFactory
            engine.insert("a", "b", 1.0, 1)
            engine.snapshot(path)
            restored = ShardedSummary.restore(path)
            assert isinstance(restored.factory, HiggsShardFactory)
            assert restored.memory_bytes() == engine.memory_bytes()
            assert isinstance(restored.shard_summaries()[0], Higgs)
            engine.close()
            restored.close()
