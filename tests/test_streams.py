"""Tests for the graph stream substrate: edge model, generators, datasets,
readers and descriptive statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.streams import analysis
from repro.streams.datasets import (DATASET_ORDER, DATASETS, dataset_names,
                                    load_dataset, table2_rows)
from repro.streams.edge import GraphStream, StreamEdge
from repro.streams.generators import (StreamSpec, generate_skewness_suite,
                                      generate_stream, generate_variance_suite)
from repro.streams.readers import iter_edges_from_text, read_stream, write_stream


class TestStreamEdge:
    def test_as_tuple_and_reversed(self):
        edge = StreamEdge("a", "b", 2.0, 7)
        assert edge.as_tuple() == ("a", "b", 2.0, 7)
        assert edge.reversed() == StreamEdge("b", "a", 2.0, 7)


class TestGraphStream:
    def test_accepts_tuples_and_edges(self):
        stream = GraphStream([("a", "b", 1, 3), StreamEdge("b", "c", 2.0, 1)])
        assert len(stream) == 2
        assert isinstance(stream[0], StreamEdge)

    def test_sort_by_time(self):
        stream = GraphStream([("a", "b", 1, 5), ("b", "c", 1, 2)],
                             sort_by_time=True)
        assert [e.timestamp for e in stream] == [2, 5]

    def test_time_span_and_vertices(self, tiny_stream):
        t_min, t_max = tiny_stream.time_span
        assert t_min == 1
        assert t_max == 11
        assert "v1" in tiny_stream.vertices()
        assert ("v2", "v3") in tiny_stream.distinct_edges()

    def test_time_span_of_empty_stream_raises(self):
        with pytest.raises(ValueError):
            GraphStream([]).time_span

    def test_slice_and_total_weight(self, tiny_stream):
        window = tiny_stream.slice(5, 10)
        assert all(5 <= e.timestamp <= 10 for e in window)
        assert window.total_weight() < tiny_stream.total_weight()


class TestGenerators:
    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            StreamSpec(num_vertices=1, num_edges=10).validate()
        with pytest.raises(DatasetError):
            StreamSpec(num_vertices=10, num_edges=0).validate()
        with pytest.raises(DatasetError):
            StreamSpec(num_vertices=10, num_edges=10, skewness=0.5).validate()
        with pytest.raises(DatasetError):
            StreamSpec(num_vertices=10, num_edges=10, arrival_variance=-1).validate()

    def test_generation_is_deterministic(self):
        spec = StreamSpec(num_vertices=50, num_edges=500, seed=4)
        a = generate_stream(spec)
        b = generate_stream(spec)
        assert [e.as_tuple() for e in a] == [e.as_tuple() for e in b]

    def test_requested_size_and_sorted_timestamps(self):
        spec = StreamSpec(num_vertices=80, num_edges=700, time_span=1_000, seed=2)
        stream = generate_stream(spec)
        assert len(stream) == 700
        timestamps = [e.timestamp for e in stream]
        assert timestamps == sorted(timestamps)
        assert all(0 <= t < 1_000 for t in timestamps)

    def test_no_self_loops(self):
        stream = generate_stream(StreamSpec(num_vertices=20, num_edges=800, seed=6))
        assert all(e.source != e.destination for e in stream)

    def test_higher_skew_concentrates_degrees(self):
        flat = generate_stream(StreamSpec(num_vertices=300, num_edges=4_000,
                                          skewness=1.5, seed=8))
        steep = generate_stream(StreamSpec(num_vertices=300, num_edges=4_000,
                                           skewness=3.0, seed=8))
        assert analysis.degree_stats(steep).top1_percent_share > \
            analysis.degree_stats(flat).top1_percent_share

    def test_variance_increases_burstiness(self):
        calm = generate_stream(StreamSpec(num_vertices=200, num_edges=4_000,
                                          arrival_variance=0, seed=5))
        bursty = generate_stream(StreamSpec(num_vertices=200, num_edges=4_000,
                                            arrival_variance=1_600, seed=5))
        assert analysis.arrival_variance(bursty) > analysis.arrival_variance(calm)

    def test_suites_have_expected_sizes(self):
        skew_suite = generate_skewness_suite(num_vertices=100, num_edges=500,
                                             exponents=(1.5, 2.5))
        var_suite = generate_variance_suite(num_vertices=100, num_edges=500,
                                            variances=(600, 1600))
        assert len(skew_suite) == 2
        assert len(var_suite) == 2
        assert all(len(s) == 500 for s in skew_suite + var_suite)


class TestDatasets:
    def test_dataset_registry(self):
        assert dataset_names() == DATASET_ORDER
        assert set(DATASETS) == set(DATASET_ORDER)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("imaginary")

    def test_scaled_loading_preserves_relative_sizes(self):
        lkml = load_dataset("lkml", scale=0.05)
        stackoverflow = load_dataset("stackoverflow", scale=0.05)
        assert len(stackoverflow) > len(lkml)

    def test_loading_is_deterministic(self):
        a = load_dataset("lkml", scale=0.05)
        b = load_dataset("lkml", scale=0.05)
        assert [e.as_tuple() for e in a] == [e.as_tuple() for e in b]

    def test_table2_rows_structure(self):
        rows = table2_rows(scale=0.05)
        assert len(rows) == 3
        for row in rows:
            assert row["edges"] > 0
            assert row["nodes"] > 0
            assert row["paper_edges"] > row["edges"]


class TestReaders:
    def test_iter_edges_parses_three_and_four_field_lines(self):
        lines = ["% comment", "# another", "a b 5", "a c 2.5 7", ""]
        edges = list(iter_edges_from_text(lines))
        assert edges[0] == StreamEdge("a", "b", 1.0, 5)
        assert edges[1] == StreamEdge("a", "c", 2.5, 7)

    def test_malformed_lines_raise(self):
        with pytest.raises(DatasetError):
            list(iter_edges_from_text(["a b"]))
        with pytest.raises(DatasetError):
            list(iter_edges_from_text(["a b notaweight notatime"]))

    def test_round_trip_through_file(self, tmp_path, tiny_stream):
        path = tmp_path / "stream.txt"
        write_stream(tiny_stream, path)
        loaded = read_stream(path)
        assert len(loaded) == len(tiny_stream)
        assert loaded.total_weight() == tiny_stream.total_weight()

    def test_missing_and_empty_files_raise(self, tmp_path):
        with pytest.raises(DatasetError):
            read_stream(tmp_path / "absent.txt")
        empty = tmp_path / "empty.txt"
        empty.write_text("% nothing here\n")
        with pytest.raises(DatasetError):
            read_stream(empty)


class TestAnalysis:
    def test_degree_distributions(self, tiny_stream):
        out_degrees = analysis.out_degree_distribution(tiny_stream)
        in_degrees = analysis.in_degree_distribution(tiny_stream)
        assert out_degrees["v2"] == 4
        assert in_degrees["v3"] == 3

    def test_ccdf_is_monotone_decreasing(self, small_stream):
        ccdf = analysis.degree_ccdf(small_stream)
        probabilities = [p for _, p in ccdf]
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] == 1.0

    def test_degree_stats_fields(self, small_stream):
        stats = analysis.degree_stats(small_stream)
        assert stats.max_degree >= stats.median_degree
        assert 0.0 <= stats.gini <= 1.0
        assert 0.0 < stats.top1_percent_share <= 1.0

    def test_arrival_histogram_covers_all_edges(self, small_stream):
        histogram = analysis.arrival_histogram(small_stream, num_bins=20)
        assert sum(count for _, count in histogram) == len(small_stream)

    def test_summarize_keys(self, small_stream):
        summary = analysis.summarize(small_stream)
        for key in ("name", "edges", "vertices", "distinct_edges", "time_span",
                    "max_out_degree", "degree_gini", "arrival_variance"):
            assert key in summary

    def test_empty_stream_statistics(self):
        empty = GraphStream([])
        assert analysis.degree_ccdf(empty) == []
        assert analysis.arrival_histogram(empty) == []
        assert analysis.arrival_variance(empty) == 0.0
        stats = analysis.degree_stats(empty)
        assert stats.max_degree == 0
