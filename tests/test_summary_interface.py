"""Tests for the shared :class:`TemporalGraphSummary` interface defaults."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.streams.edge import GraphStream, StreamEdge
from repro.summary import TemporalGraphSummary


class _DictSummary(TemporalGraphSummary):
    """Minimal exact implementation used to exercise the interface defaults."""

    name = "dict-summary"

    def __init__(self):
        self.items = []

    def insert(self, source, destination, weight, timestamp):
        self.items.append((source, destination, weight, timestamp))

    def edge_query(self, source, destination, t_start, t_end):
        self.check_range(t_start, t_end)
        return sum(w for s, d, w, t in self.items
                   if s == source and d == destination and t_start <= t <= t_end)

    def vertex_query(self, vertex, t_start, t_end, direction="out"):
        self.check_range(t_start, t_end)
        if direction == "out":
            return sum(w for s, _d, w, t in self.items
                       if s == vertex and t_start <= t <= t_end)
        return sum(w for _s, d, w, t in self.items
                   if d == vertex and t_start <= t <= t_end)

    def memory_bytes(self):
        return len(self.items) * 32


@pytest.fixture()
def summary() -> _DictSummary:
    s = _DictSummary()
    s.insert("a", "b", 1.0, 1)
    s.insert("b", "c", 2.0, 2)
    s.insert("c", "d", 3.0, 3)
    s.insert("a", "b", 4.0, 9)
    return s


class TestDefaults:
    def test_default_delete_inserts_negative_weight(self, summary):
        summary.delete("a", "b", 1.0, 1)
        assert summary.edge_query("a", "b", 0, 5) == 0.0

    def test_insert_stream_accepts_graphstream_and_iterables(self):
        edges = [StreamEdge("x", "y", 1.0, 0), StreamEdge("y", "z", 1.0, 1)]
        s1, s2 = _DictSummary(), _DictSummary()
        s1.insert_stream(GraphStream(edges))
        s2.insert_stream(iter(edges))
        assert s1.items == s2.items

    def test_path_query_default(self, summary):
        assert summary.path_query(["a", "b", "c", "d"], 0, 5) == 6.0

    def test_path_query_requires_two_vertices(self, summary):
        with pytest.raises(QueryError):
            summary.path_query(["a"], 0, 5)

    def test_subgraph_query_default(self, summary):
        assert summary.subgraph_query([("a", "b"), ("c", "d")], 0, 5) == 4.0

    def test_subgraph_query_requires_edges(self, summary):
        with pytest.raises(QueryError):
            summary.subgraph_query([], 0, 5)

    def test_check_range_rejects_inverted_ranges(self):
        with pytest.raises(QueryError):
            TemporalGraphSummary.check_range(5, 4)
        TemporalGraphSummary.check_range(5, 5)
