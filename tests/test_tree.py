"""Tests for the HIGGS tree (growth, aggregation cascade, deletion, stats)."""

from __future__ import annotations

import pytest

from repro.core.config import HiggsConfig
from repro.core.hashing import VertexHasher
from repro.core.tree import HiggsTree


@pytest.fixture()
def config() -> HiggsConfig:
    # A deliberately tiny leaf so trees grow quickly in tests.
    return HiggsConfig(leaf_matrix_size=4, bucket_entries=1, fingerprint_bits=10,
                       num_probes=1, enable_overflow_blocks=False)


@pytest.fixture()
def hasher(config) -> VertexHasher:
    return VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)


def _insert(tree: HiggsTree, hasher: VertexHasher, source, destination,
            weight, timestamp) -> None:
    fs, hs = hasher.split(source)
    fd, hd = hasher.split(destination)
    tree.insert_hashed(fs, fd, hs, hd, weight, timestamp)


def _fill(tree: HiggsTree, hasher: VertexHasher, count: int,
          start_time: int = 0) -> None:
    for i in range(count):
        _insert(tree, hasher, f"s{i}", f"d{i}", 1.0, start_time + i)


class TestGrowth:
    def test_starts_with_single_leaf_on_first_insert(self, config, hasher):
        tree = HiggsTree(config)
        assert tree.leaf_count == 0
        _insert(tree, hasher, "a", "b", 1.0, 1)
        assert tree.leaf_count == 1
        assert tree.height == 1
        assert tree.items_inserted == 1

    def test_new_leaves_open_on_overflow(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 200)
        assert tree.leaf_count > 1
        assert tree.items_inserted == 200
        # Every leaf except the last is closed.
        assert all(leaf.closed for leaf in tree.leaves[:-1])
        assert not tree.leaves[-1].closed

    def test_internal_nodes_materialize_per_fanout_group(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 400)
        expected_level2 = (tree.leaf_count - 1) // config.fanout
        level2 = tree.internal_levels()[0] if tree.internal_levels() else []
        # Only complete groups (all four leaves closed) are materialized.
        assert len(level2) in (expected_level2, expected_level2 + 1)
        for index, node in enumerate(level2):
            assert node.index == index
            assert node.level == 2
            assert node.complete

    def test_height_grows_logarithmically(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 800)
        assert tree.height >= 3
        assert tree.leaf_count > config.fanout ** (tree.height - 2)

    def test_internal_node_lookup_bounds(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 300)
        assert tree.internal_node(2, 10_000) is None
        assert tree.internal_node(99, 0) is None
        if tree.internal_levels() and tree.internal_levels()[0]:
            assert tree.internal_node(2, 0) is tree.internal_levels()[0][0]


class TestTimestampTracking:
    def test_monotonic_flag(self, config, hasher):
        tree = HiggsTree(config)
        _insert(tree, hasher, "a", "b", 1.0, 5)
        _insert(tree, hasher, "a", "c", 1.0, 9)
        assert tree.stats()["monotonic"] is True
        _insert(tree, hasher, "a", "d", 1.0, 2)
        assert tree.stats()["monotonic"] is False

    def test_leaf_time_ranges_are_ordered_for_sorted_streams(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 300)
        previous_end = None
        for leaf in tree.leaves:
            if previous_end is not None:
                assert leaf.t_min >= previous_end - 1  # boundaries may touch
            previous_end = leaf.t_max


class TestOverflowBlocks:
    def test_same_timestamp_overflow_goes_to_block(self):
        config = HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                             fingerprint_bits=10, num_probes=1,
                             enable_overflow_blocks=True)
        hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size)
        tree = HiggsTree(config)
        # Everything arrives at the same timestamp: instead of a long chain of
        # one-timestamp leaves, overflow blocks keep a single leaf.
        for i in range(120):
            _insert(tree, hasher, f"s{i}", f"d{i}", 1.0, 7)
        assert tree.leaf_count == 1
        assert len(tree.leaves[0].overflow_blocks) > 0

    def test_disabled_overflow_blocks_open_new_leaves(self, config, hasher):
        tree = HiggsTree(config)
        for i in range(120):
            _insert(tree, hasher, f"s{i}", f"d{i}", 1.0, 7)
        assert tree.leaf_count > 1


class TestDeletion:
    def test_delete_reduces_leaf_weight(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 50)
        fs, hs = hasher.split("s10")
        fd, hd = hasher.split("d10")
        assert tree.delete_hashed(fs, fd, hs, hd, 1.0, 10)
        # The entry is now zero-weighted.
        for leaf in tree.leaves:
            weight = sum(m.query_edge(fs, fd, hs, hd) for m in leaf.matrices())
            assert weight <= 0.0 + 1e-9

    def test_delete_missing_item_returns_false(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 20)
        fs, hs = hasher.split("absent")
        fd, hd = hasher.split("ghost")
        assert not tree.delete_hashed(fs, fd, hs, hd, 1.0, 5)

    def test_delete_updates_materialized_ancestors(self, config, hasher):
        from repro.core.aggregation import lift_coordinates
        tree = HiggsTree(config)
        _fill(tree, hasher, 400)
        # Pick an item stored in the first (aggregated) leaf group.
        fs, hs = hasher.split("s0")
        fd, hd = hasher.split("d0")
        node = tree.internal_node(2, 0)
        assert node is not None
        lifted_fs, lifted_hs = lift_coordinates(fs, hs, 1, 2, config)
        lifted_fd, lifted_hd = lift_coordinates(fd, hd, 1, 2, config)
        before = node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd)
        assert tree.delete_hashed(fs, fd, hs, hd, 1.0, 0)
        after = node.query_edge(lifted_fs, lifted_fd, lifted_hs, lifted_hd)
        assert after == pytest.approx(before - 1.0)


class TestStatsAndMemory:
    def test_stats_keys_present(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 150)
        stats = tree.stats()
        for key in ("leaf_count", "height", "items_inserted", "leaf_entries",
                    "leaf_utilization", "overflow_blocks", "internal_nodes",
                    "memory_bytes", "monotonic"):
            assert key in stats
        assert stats["items_inserted"] == 150
        assert stats["memory_bytes"] == tree.memory_bytes()

    def test_memory_grows_with_items(self, config, hasher):
        tree = HiggsTree(config)
        _fill(tree, hasher, 30)
        small = tree.memory_bytes()
        _fill(tree, hasher, 300, start_time=100)
        assert tree.memory_bytes() > small
