"""Tests for the temporal-range-query baselines: PGSS, Horae(-cpt), AuxoTime(-cpt).

Every TRQ baseline must honour the same contract as HIGGS: one-sided error
with respect to the exact store, support for edge and vertex queries over any
range, and a meaningful analytic memory footprint.
"""

from __future__ import annotations

import pytest

from repro.baselines import (AuxoTime, AuxoTimeCompact, Horae, HoraeCompact,
                             PGSS)
from repro.baselines.exact import ExactTemporalGraph
from repro.errors import ConfigurationError


def _build(summary, stream):
    summary.insert_stream(stream)
    return summary


def _methods_for(stream):
    t_min, t_max = stream.time_span
    span = t_max - t_min + 1
    return {
        "PGSS": PGSS(expected_items=len(stream), time_span=span),
        "Horae": Horae(expected_items=len(stream), time_span=span),
        "Horae-cpt": HoraeCompact(expected_items=len(stream), time_span=span),
        "AuxoTime": AuxoTime(time_span=span),
        "AuxoTime-cpt": AuxoTimeCompact(time_span=span),
    }


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PGSS(expected_items=0)
        with pytest.raises(ConfigurationError):
            PGSS(expected_items=10, depth=0)
        with pytest.raises(ConfigurationError):
            Horae(expected_items=0, time_span=100)
        with pytest.raises(ConfigurationError):
            Horae(expected_items=10, time_span=0)
        with pytest.raises(ConfigurationError):
            Horae(expected_items=10, time_span=10, layer_stride=0)
        with pytest.raises(ConfigurationError):
            AuxoTime(time_span=0)

    def test_compact_variants_keep_fewer_layers(self):
        full = Horae(expected_items=1000, time_span=10_000)
        compact = HoraeCompact(expected_items=1000, time_span=10_000)
        assert compact.num_layers < full.num_layers
        assert compact.memory_bytes() < full.memory_bytes()

        full_at = AuxoTime(time_span=10_000)
        compact_at = AuxoTimeCompact(time_span=10_000)
        assert compact_at.num_layers < full_at.num_layers

    def test_pgss_tracks_granularities(self):
        sketch = PGSS(expected_items=100, time_span=1_000)
        assert sketch.num_granularities >= 10


class TestSmallExactBehaviour:
    def test_single_edge_range_queries(self):
        for name, summary in _methods_for_single().items():
            summary.insert("a", "b", 2.0, 10)
            summary.insert("a", "b", 3.0, 20)
            assert summary.edge_query("a", "b", 0, 15) >= 2.0, name
            assert summary.edge_query("a", "b", 0, 30) >= 5.0, name
            assert summary.edge_query("a", "b", 11, 19) < 5.0 + 1e-9, name

    def test_vertex_queries_cover_both_directions(self):
        for name, summary in _methods_for_single().items():
            summary.insert("a", "b", 1.0, 5)
            summary.insert("a", "c", 2.0, 6)
            summary.insert("d", "a", 4.0, 7)
            assert summary.vertex_query("a", 0, 10) >= 3.0, name
            assert summary.vertex_query("a", 0, 10, direction="in") >= 4.0, name


def _methods_for_single():
    return {
        "PGSS": PGSS(expected_items=16, time_span=64),
        "Horae": Horae(expected_items=16, time_span=64),
        "Horae-cpt": HoraeCompact(expected_items=16, time_span=64),
        "AuxoTime": AuxoTime(time_span=64),
        "AuxoTime-cpt": AuxoTimeCompact(time_span=64),
    }


class TestOneSidedErrorOnStream:
    @pytest.mark.parametrize("method_name", ["PGSS", "Horae", "Horae-cpt",
                                             "AuxoTime", "AuxoTime-cpt"])
    def test_edge_estimates_never_below_truth(self, method_name, small_stream,
                                              small_truth):
        summary = _methods_for(small_stream)[method_name]
        _build(summary, small_stream)
        t_min, t_max = small_stream.time_span
        ranges = [(t_min, t_max), (t_min + 50, t_min + 700),
                  (t_min + 900, t_min + 1_100)]
        for source, destination in sorted(small_stream.distinct_edges())[:60]:
            for t_start, t_end in ranges:
                estimate = summary.edge_query(source, destination, t_start, t_end)
                truth = small_truth.edge_query(source, destination, t_start, t_end)
                assert estimate >= truth - 1e-9

    @pytest.mark.parametrize("method_name", ["PGSS", "Horae", "AuxoTime"])
    def test_vertex_estimates_never_below_truth(self, method_name, small_stream,
                                                small_truth):
        summary = _methods_for(small_stream)[method_name]
        _build(summary, small_stream)
        t_min, t_max = small_stream.time_span
        for vertex in sorted(small_stream.vertices())[:40]:
            estimate = summary.vertex_query(vertex, t_min, t_max)
            truth = small_truth.vertex_query(vertex, t_min, t_max)
            assert estimate >= truth - 1e-9


class TestMemoryAccounting:
    def test_memory_positive_and_grows(self, small_stream):
        for name, summary in _methods_for(small_stream).items():
            before = summary.memory_bytes()
            assert before >= 0, name
            _build(summary, small_stream)
            assert summary.memory_bytes() >= before, name

    def test_horae_memory_scales_with_layers(self):
        short = Horae(expected_items=1000, time_span=16)
        long = Horae(expected_items=1000, time_span=1 << 14)
        assert long.memory_bytes() > short.memory_bytes()


class TestDeletion:
    def test_auxotime_delete_subtracts(self):
        summary = AuxoTime(time_span=128)
        summary.insert("a", "b", 5.0, 10)
        summary.delete("a", "b", 2.0, 10)
        assert summary.edge_query("a", "b", 0, 20) == pytest.approx(3.0)

    def test_pgss_and_horae_delete_via_negative_weight(self):
        for summary in (PGSS(expected_items=16, time_span=64),
                        Horae(expected_items=16, time_span=64)):
            summary.insert("a", "b", 5.0, 10)
            summary.delete("a", "b", 2.0, 10)
            assert summary.edge_query("a", "b", 0, 20) == pytest.approx(3.0)
