"""Bit-identity of the vectorized kernels against the pure-Python fallback.

Every numpy path in the codebase is an *optimization*, never a semantic
change: the accelerated kernels must produce byte-for-byte the same summary
(bucket contents, occupancy maps, leaf time ranges, overflow maps) and the
same query answers as the retained pure-Python code.  These tests build the
same stream twice — once with the accelerator active, once under
``set_pure_python(True)`` — and compare deep structural digests plus every
query type (edge, vertex in/out, path, subgraph) through both the per-item
and the batch query APIs, for both sharding partition modes.

Kernel-level properties (``hash64_array`` vs :func:`repro.core.hashing.hash64`
and friends) are pinned separately so a divergence points at the exact
kernel rather than at "the tree ended up different".
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Higgs, HiggsConfig
from repro.core import vectorized
from repro.core.aggregation import lift_coordinates
from repro.core.config import set_pure_python
from repro.core.hashing import VertexHasher, hash64
from repro.core.matrix import CompressedMatrix
from repro.queries.types import (EdgeQuery, PathQuery, SubgraphQuery,
                                 VertexQuery)
from repro.sharding import ShardedSummary
from repro.streams.edge import StreamEdge

pytestmark = pytest.mark.skipif(
    not vectorized.available(),
    reason="numpy not importable; only the fallback path exists")

np = vectorized.np

# Small universes force fingerprint collisions, bucket spills, overflow
# blocks, and aggregation — the structurally interesting regimes.
_SMALL = HiggsConfig(leaf_matrix_size=4, bucket_entries=1,
                     fingerprint_bits=8, num_probes=2, fanout=4)
_MEDIUM = HiggsConfig(leaf_matrix_size=8, bucket_entries=2,
                      fingerprint_bits=12, num_probes=3)

_vertices = st.integers(min_value=0, max_value=20).map(lambda i: f"v{i}")
_edges = st.lists(
    st.tuples(_vertices, _vertices, st.integers(1, 9), st.integers(0, 120)),
    min_size=1, max_size=150).map(
        lambda items: [StreamEdge(s, d, float(w), t)
                       for s, d, w, t in
                       sorted(items, key=lambda item: item[3])])
_keys = st.one_of(
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.text(max_size=24),
    st.binary(max_size=24))


@pytest.fixture()
def pure_python_toggle():
    """Restore accelerator auto-detection after a test that forces modes."""
    yield set_pure_python
    set_pure_python(None)


def _matrix_digest(matrix: CompressedMatrix):
    buckets = {
        position: [(e.src_fingerprint, e.dst_fingerprint, e.src_probe,
                    e.dst_probe, e.weight, e.timestamp) for e in bucket]
        for position, bucket in matrix._buckets.items()}
    rows = {row: sorted(cols) for row, cols in matrix._rows.items()}
    cols = {col: sorted(rows) for col, rows in matrix._cols.items()}
    return (buckets, rows, cols, matrix.start_time, matrix.end_time)


def _tree_digest(summary: Higgs):
    tree = summary._tree
    leaves = [
        ([_matrix_digest(m) for m in leaf.matrices()], leaf.closed)
        for leaf in tree.leaves]
    internal = [
        [(_matrix_digest(node.matrix), dict(node.overflow))
         for node in level]
        for level in tree.internal_levels()]
    return (leaves, internal, summary.stats())


def _build(config, edges, batch: bool):
    summary = Higgs(config)
    if batch:
        summary.insert_batch(edges)
    else:
        for edge in edges:
            summary.insert(edge.source, edge.destination, edge.weight,
                           edge.timestamp)
    return summary


def _queries(edges):
    t_min = min(e.timestamp for e in edges)
    t_max = max(e.timestamp for e in edges)
    spans = [(t_min, t_max), (t_min, (t_min + t_max) // 2), (t_max, t_max)]
    built = []
    for t0, t1 in spans:
        for edge in edges[:20]:
            built.append(EdgeQuery(edge.source, edge.destination, t0, t1))
            built.append(VertexQuery(edge.source, t0, t1, "out"))
            built.append(VertexQuery(edge.destination, t0, t1, "in"))
        if len(edges) >= 2:
            built.append(PathQuery((edges[0].source, edges[0].destination,
                                    edges[1].destination), t0, t1))
            built.append(SubgraphQuery(
                tuple((e.source, e.destination) for e in edges[:5]), t0, t1))
    return built


# --------------------------------------------------------------------- #
# kernel-level equivalences
# --------------------------------------------------------------------- #

@given(keys=st.lists(_keys, min_size=1, max_size=60),
       seed=st.integers(0, 2 ** 32 - 1))
@settings(max_examples=80, deadline=None)
def test_hash64_array_matches_scalar(keys, seed):
    bulk = vectorized.hash64_array(keys, seed).tolist()
    assert bulk == [hash64(key, seed) for key in keys]


@given(keys=st.lists(_keys, min_size=1, max_size=40),
       seed=st.integers(0, 2 ** 16))
@settings(max_examples=40, deadline=None)
def test_split_array_matches_vertex_hasher(keys, seed):
    config = HiggsConfig(hash_seed=seed)
    hasher = VertexHasher(config.fingerprint_bits, config.leaf_matrix_size,
                          seed=seed)
    hashes = vectorized.hash64_array(keys, seed)
    fingerprints, addresses = vectorized.split_array(
        hashes, config.fingerprint_bits, config.leaf_matrix_size)
    expected = [hasher.split(key) for key in keys]
    assert list(zip(fingerprints.tolist(), addresses.tolist())) == expected


@given(items=st.lists(st.tuples(st.integers(0, 2 ** 19 - 1),
                                st.integers(0, 15)),
                      min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_probe_rows_array_matches_scalar(items):
    matrix = CompressedMatrix(size=16, bucket_entries=2, num_probes=4)
    fingerprints = np.asarray([fp for fp, _ in items], dtype=np.int64)
    addresses = np.asarray([addr for _, addr in items], dtype=np.int64)
    bulk = matrix.probe_rows_array(fingerprints, addresses)
    for row, (fp, addr) in zip(bulk.tolist(), items):
        assert tuple(row) == matrix.probe_rows(fp, addr)


@given(fps=st.lists(st.integers(0, 2 ** 19 - 1), min_size=1, max_size=50),
       from_level=st.integers(1, 3), up=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_lift_array_matches_lift_coordinates(fps, from_level, up):
    config = _MEDIUM
    to_level = from_level + up
    addrs = [fp % config.matrix_size_at(from_level) for fp in fps]
    lifted_fp, lifted_addr = vectorized.lift_array(
        np.asarray(fps, dtype=np.int64), np.asarray(addrs, dtype=np.int64),
        from_level, to_level, config)
    expected = [lift_coordinates(fp, addr, from_level, to_level, config)
                for fp, addr in zip(fps, addrs)]
    assert list(zip(lifted_fp.tolist(), lifted_addr.tolist())) == expected


def test_group_ids_first_occurrence_order():
    gids = vectorized.group_ids(
        np.asarray([3, 1, 3, 2, 1], dtype=np.int64),
        np.asarray([0, 0, 0, 0, 0], dtype=np.int64)).tolist()
    # Equal rows share an id; ids are dense but need not be order of first
    # occurrence — only the partition matters for the placement memo.
    assert gids[0] == gids[2]
    assert gids[1] == gids[4]
    assert len({gids[0], gids[1], gids[3]}) == 3


# --------------------------------------------------------------------- #
# end-to-end bit identity
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("config", [_SMALL, _MEDIUM],
                         ids=["small", "medium"])
@given(edges=_edges)
@settings(max_examples=25, deadline=None)
def test_batch_insert_summary_bit_identical(config, edges):
    try:
        set_pure_python(False)
        fast = _build(config, edges, batch=True)
        set_pure_python(True)
        slow = _build(config, edges, batch=True)
    finally:
        set_pure_python(None)
    assert _tree_digest(fast) == _tree_digest(slow)


@given(edges=_edges)
@settings(max_examples=20, deadline=None)
def test_batch_insert_matches_per_item_inserts(edges):
    try:
        set_pure_python(False)
        batched = _build(_SMALL, edges, batch=True)
        set_pure_python(True)
        itemized = _build(_SMALL, edges, batch=False)
    finally:
        set_pure_python(None)
    assert _tree_digest(batched) == _tree_digest(itemized)


@given(edges=_edges)
@settings(max_examples=20, deadline=None)
def test_query_answers_bit_identical(edges):
    queries = _queries(edges)
    try:
        set_pure_python(False)
        fast = _build(_SMALL, edges, batch=True)
        fast_batch = fast.query_batch(queries)
        fast_items = [query.evaluate(fast) for query in queries
                      if not isinstance(query, (PathQuery, SubgraphQuery))]
        set_pure_python(True)
        slow = _build(_SMALL, edges, batch=True)
        slow_batch = slow.query_batch(queries)
        slow_items = [query.evaluate(slow) for query in queries
                      if not isinstance(query, (PathQuery, SubgraphQuery))]
    finally:
        set_pure_python(None)
    assert fast_batch == slow_batch
    assert fast_items == slow_items


@pytest.mark.parametrize("partition_by", ["source", "edge"])
@given(edges=_edges)
@settings(max_examples=10, deadline=None)
def test_sharded_answers_bit_identical(partition_by, edges):
    queries = _queries(edges)

    def run(pure: bool):
        set_pure_python(pure)
        engine = ShardedSummary(shards=3, partition_by=partition_by)
        try:
            engine.insert_batch(edges)
            digests = tuple(_tree_digest(inner)
                            for inner in engine.shard_summaries())
            return digests, engine.query_batch(queries)
        finally:
            engine.close()

    try:
        fast_state, fast_answers = run(False)
        slow_state, slow_answers = run(True)
    finally:
        set_pure_python(None)
    assert fast_state == slow_state
    assert fast_answers == slow_answers


def test_generator_prefix_applied_on_mid_stream_error(pure_python_toggle):
    """The numpy batch path keeps the scalar streaming exception contract."""

    class Boom(RuntimeError):
        pass

    def stream(count):
        for i in range(count):
            yield StreamEdge(f"v{i % 7}", f"v{(i + 1) % 7}", 1.0, i)
        raise Boom()

    def build(pure: bool):
        pure_python_toggle(pure)
        summary = Higgs(_SMALL)
        with pytest.raises(Boom):
            summary.insert_batch(stream(40))
        return summary

    assert _tree_digest(build(False)) == _tree_digest(build(True))
