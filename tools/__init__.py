"""Repository tooling: CI checkers and the ``repro-lint`` analysis suite.

This package holds the scripts CI runs against the repository itself:

* ``check_docs.py`` — public-API docstring audit + README snippet execution
  (kept as a standalone script; loaded by file path from its tests).
* ``check_perf.py`` — the performance-regression gate (standalone script).
* :mod:`tools.analyze` — project-specific static analysis (``python -m
  tools.analyze src/``) and the runtime lock-order detector.
"""
