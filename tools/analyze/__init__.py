"""``repro-lint``: project-specific static analysis for the concurrent engine.

The generic lint gate (ruff) catches generic bugs; this package checks the
*project's own* invariants — the hand-maintained rules the sharding and
serving layers rest on (lock discipline, drain-before-swap, repro-error-only
raises, hot-path loop inventory).  Two halves:

* **AST lint rules** (:mod:`tools.analyze.rules`, driven by
  :mod:`tools.analyze.driver`):

  ========  ==========================================================
  CONC001   blocking call (``Queue.get/put``, ``collect``, ``join``,
            ``sleep``, ``Condition.wait``) inside a ``with self._lock:``
            body
  CONC002   attribute declared ``# guarded-by: <lock>`` accessed outside
            a matching ``with`` block (or outside its owner methods for
            the ``owner=`` confinement form)
  CONC003   ``threading.Thread`` created without ``daemon=`` or a
            tracked ``join()``
  EXC001    swallowed broad ``except`` (no re-raise, no logging, no use
            of the caught exception)
  ERR001    raising bare builtin exceptions instead of
            :mod:`repro.errors` types from ``src/repro/**``
  HOT001    per-edge Python loop inside a function marked ``# hot-path``
            (the machine-checked vectorization inventory); scalar twins
            declaring ``# hot-path: bulk=<kernel>`` and hot-path
            functions driving ``*_array``/numpy bulk calls are compliant
  ========  ==========================================================

* **Interprocedural rules** (:mod:`tools.analyze.callgraph` builds a
  conservative whole-program call graph over ``src/repro``;
  :mod:`tools.analyze.propagate` runs fixpoint dataflow over it):

  ========  ==========================================================
  CONC004   a call *chain* from a with-lock region reaches a blocking
            primitive at any depth (the transitive completion of
            CONC001); reports the full chain
  ERR002    a builtin exception type can escape a public
            ``ShardedSummary``/``ServingEngine``/snapshot entry point
            instead of a :mod:`repro.errors` type (the interprocedural
            completion of ERR001); reports the escape chain
  PICK001   unpicklable state (locks, threads, queues, sockets, open
            files, generators, lambdas/closures) is reachable from a
            value crossing the ``ProcessShardWorker``/snapshot pickle
            boundary
  ========  ==========================================================

  Findings support inline ``# repro-lint: ok <RULE>`` suppressions and a
  committed baseline (``tools/analyze/baseline.json``) whose every entry
  carries a written justification, so only *new* findings fail the build::

      python -m tools.analyze src/

  ``--cache <file>`` persists the call graph keyed on a source
  fingerprint; ``--ci`` turns stale baseline entries into exit-2 errors;
  ``--counts`` prints a per-rule new/suppressed/baselined table.

* **Runtime lock-order detector** (:mod:`tools.analyze.lockgraph`): an
  instrumented ``Lock``/``RLock``/``Condition`` factory recording per-thread
  acquisition stacks, building the global lock-order graph, and reporting
  cycles (potential deadlocks) and blocking waits while holding another
  lock.  The ``lock_monitor`` pytest fixture (``tests/conftest.py``) patches
  it in for the serving/sharding stress tests.
"""

from __future__ import annotations

from .callgraph import CallGraph, build_package_graph
from .driver import (REPO_ROOT, analyze_paths, analyze_source,
                     interprocedural_findings, load_baseline,
                     load_or_build_graph, main)
from .propagate import INTER_RULES, EntrySpec, run_interprocedural
from .rules import Finding, RULES

__all__ = ["CallGraph", "EntrySpec", "Finding", "INTER_RULES", "REPO_ROOT",
           "RULES", "analyze_paths", "analyze_source", "build_package_graph",
           "interprocedural_findings", "load_baseline", "load_or_build_graph",
           "main", "run_interprocedural"]
