"""``repro-lint``: project-specific static analysis for the concurrent engine.

The generic lint gate (ruff) catches generic bugs; this package checks the
*project's own* invariants — the hand-maintained rules the sharding and
serving layers rest on (lock discipline, drain-before-swap, repro-error-only
raises, hot-path loop inventory).  Two halves:

* **AST lint rules** (:mod:`tools.analyze.rules`, driven by
  :mod:`tools.analyze.driver`):

  ========  ==========================================================
  CONC001   blocking call (``Queue.get/put``, ``collect``, ``join``,
            ``sleep``, ``Condition.wait``) inside a ``with self._lock:``
            body
  CONC002   attribute declared ``# guarded-by: <lock>`` accessed outside
            a matching ``with`` block (or outside its owner methods for
            the ``owner=`` confinement form)
  CONC003   ``threading.Thread`` created without ``daemon=`` or a
            tracked ``join()``
  EXC001    swallowed broad ``except`` (no re-raise, no logging, no use
            of the caught exception)
  ERR001    raising bare builtin exceptions instead of
            :mod:`repro.errors` types from ``src/repro/**``
  HOT001    per-edge Python loop inside a function marked ``# hot-path``
            (the machine-checked vectorization inventory)
  ========  ==========================================================

  Findings support inline ``# repro-lint: ok <RULE>`` suppressions and a
  committed baseline (``tools/analyze/baseline.json``) whose every entry
  carries a written justification, so only *new* findings fail the build::

      python -m tools.analyze src/

* **Runtime lock-order detector** (:mod:`tools.analyze.lockgraph`): an
  instrumented ``Lock``/``RLock``/``Condition`` factory recording per-thread
  acquisition stacks, building the global lock-order graph, and reporting
  cycles (potential deadlocks) and blocking waits while holding another
  lock.  The ``lock_monitor`` pytest fixture (``tests/conftest.py``) patches
  it in for the serving/sharding stress tests.
"""

from __future__ import annotations

from .driver import REPO_ROOT, analyze_paths, analyze_source, load_baseline, main
from .rules import Finding, RULES

__all__ = ["Finding", "RULES", "REPO_ROOT", "analyze_paths", "analyze_source",
           "load_baseline", "main"]
