"""``python -m tools.analyze [paths...]`` — run the repro-lint suite."""

from __future__ import annotations

import sys

from .driver import main

if __name__ == "__main__":
    sys.exit(main())
