"""Conservative whole-program call graph over one Python package.

The graph is built from nothing but the AST — no imports of the analyzed
code are executed — and deliberately over-approximates: every resolution
rule either finds the real callee(s) or a superset of them, so downstream
fixpoint analyses (:mod:`tools.analyze.propagate`) stay sound *relative to
the documented blind spots*.  Resolution rules, in order:

* **Module symbol tables.**  Each module records its top-level defs,
  module-level string constants, and an import map with relative imports
  resolved against the package (``from ..errors import X`` in
  ``repro.sharding.engine`` binds ``X`` to ``repro.errors.X``).
* **Name calls** resolve through local nested defs, then module defs, then
  the import map.  ``functools.partial(f, ...)`` resolves to ``f``.
  Calling an internal class adds an edge to its ``__init__``.
* **Attribute calls** resolve receivers in this order: ``self`` (dispatch
  within the class hierarchy — the static class's MRO *plus* every
  transitive subclass override, so ``TemporalGraphSummary.insert_batch``
  calling ``self.insert`` reaches every summary implementation),
  ``self.<attr>`` via inferred attribute types, local variables via
  single-assignment inference (constructor calls, annotated returns,
  ``self.<attr>`` reads, one subscript unwrap), module aliases, and
  class names.
* **Worker-op indirection.**  A function whose body forwards a
  non-constant first argument into ``.submit(...)``/``.call(...)`` is an
  *op forwarder* (``ShardWorker.call``, ``ShardedSummary._scatter`` /
  ``_call_shard``).  At every call site of an op forwarder, string
  constants among the arguments (recursively through tuples/dicts/lists)
  are resolved as method names against the summary class hierarchy and
  recorded as ``indirect`` edges; reserved ``__op__`` names map to the
  worker internals and produce no edge.

Every call site additionally records the lexically held lock set (same
``_LOCKISH`` convention as CONC001) and the exception-handler context
(types caught by enclosing ``try`` bodies), which is what lets the
propagation layer filter escapes and anchor transitive-blocking reports.

Known unsoundness (documented here, tested in ``tests/test_callgraph.py``,
and summarized in ``docs/ARCHITECTURE.md``): decorators are assumed
identity-preserving; calls through untyped locals/parameters produce no
edge; containers deeper than one subscript are opaque; dynamic dispatch
via ``getattr`` is invisible.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import _expr_key

#: Bump when graph semantics change so stale on-disk caches self-invalidate.
GRAPH_VERSION = "1"

_LOCKISH = re.compile(r"(^|_)(lock|mutex|state|cond|condition|sem|semaphore)s?\d*$")

#: Method names that park the calling thread when invoked on an *external*
#: receiver (queue/pipe/socket/condition objects).  Internal callees are
#: never matched syntactically — their bodies are analyzed instead, which
#: is exactly what makes ``InlineShardWorker.collect`` (a list pop)
#: non-blocking while ``ThreadShardWorker.collect`` (``Queue.get``) blocks.
_BLOCKING_ATTRS = {"get", "put", "join", "collect", "sleep", "wait", "wait_for",
                   "recv", "recv_bytes", "select", "accept", "connect"}

#: Reserved worker ops handled by ``_apply_reserved``; they never dispatch
#: to summary methods, so they produce no indirect edge.
_RESERVED_OP = re.compile(r"^__\w+__$")


@dataclass
class ModuleTable:
    """Symbol table of one module: defs, imports, string constants."""

    name: str
    path: str
    is_package: bool
    defs: Dict[str, str] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)
    constants: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function or method node in the graph."""

    qname: str
    module: str
    path: str
    lineno: int
    name: str
    node: ast.AST
    cls: Optional[str] = None

    @property
    def short(self) -> str:
        """Symbol in per-file-rule style: ``Class.method`` or ``function``."""
        if self.cls:
            return f"{self.cls.rsplit('.', 1)[-1]}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class: bases, methods, and inferred attribute types."""

    qname: str
    module: str
    path: str
    lineno: int
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> type names (internal class qnames or external
    #: dotted names like ``threading.RLock``).
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: attribute name -> first assignment site ``(path, lineno)``.
    attr_sites: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: attribute name -> value-shape hazards (``lambda``, ``nested-def``,
    #: ``generator``, ``file-handle``) for pickle-safety analysis.
    attr_hazards: Dict[str, Set[str]] = field(default_factory=dict)
    #: internal classes returned by ``__call__`` (factory payload types).
    call_returns: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallSite:
    """One resolved caller→callee edge with its lexical context."""

    caller: str
    callee: str
    path: str
    lineno: int
    kind: str  # "direct" | "indirect"
    held: Tuple[str, ...] = ()
    handlers: Tuple[FrozenSet[str], ...] = ()


@dataclass(frozen=True)
class RaiseSite:
    """One potential exception source inside a function body.

    ``exc`` is a normalized name: a short ``repro.errors`` class name, a
    builtin exception name, or ``?`` for unresolvable raises (re-raised
    variables) which the analysis ignores by documented choice.
    """

    exc: str
    lineno: int
    handlers: Tuple[FrozenSet[str], ...] = ()
    desc: str = "raise"


@dataclass(frozen=True)
class BlockSite:
    """A syntactic blocking primitive (external receiver) in a function."""

    desc: str
    lineno: int
    held: Tuple[str, ...] = ()


@dataclass
class CallGraph:
    """The whole-program graph plus the per-function fact tables."""

    package: str
    root: str
    source_key: str
    modules: Dict[str, ModuleTable] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    raises: Dict[str, List[RaiseSite]] = field(default_factory=dict)
    blocks: Dict[str, List[BlockSite]] = field(default_factory=dict)
    subclasses: Dict[str, Set[str]] = field(default_factory=dict)
    #: factory classes observed flowing into a process/worker boundary
    #: (``make_shard_worker(...)`` / ``ProcessShardWorker(...)`` call sites).
    boundary_factories: Set[str] = field(default_factory=set)
    #: ``(caller qname, path, lineno)`` of lambda arguments crossing a
    #: worker ``submit``/``call`` boundary.
    submit_lambdas: List[Tuple[str, str, int]] = field(default_factory=list)

    def calls_by_caller(self) -> Dict[str, List[CallSite]]:
        """Index the edge list by caller qname."""
        index: Dict[str, List[CallSite]] = {}
        for site in self.calls:
            index.setdefault(site.caller, []).append(site)
        return index

    def is_internal(self, dotted: str) -> bool:
        """True when ``dotted`` names something inside the package."""
        return dotted == self.package or dotted.startswith(self.package + ".")

    def mro(self, class_qname: str) -> List[str]:
        """Linearized internal ancestry (simple DFS; good enough without
        multiple inheritance diamonds, which the package does not use)."""
        order: List[str] = []
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            stack.extend(self.classes[current].bases)
        return order

    def resolve_method(self, class_qname: str, name: str) -> Optional[str]:
        """Method qname found by walking the internal MRO."""
        for ancestor in self.mro(class_qname):
            method = self.classes[ancestor].methods.get(name)
            if method:
                return method
        return None

    def transitive_subclasses(self, class_qname: str) -> Set[str]:
        """Every internal class below ``class_qname`` (exclusive)."""
        seen: Set[str] = set()
        stack = list(self.subclasses.get(class_qname, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.subclasses.get(current, ()))
        return seen

    def dispatch(self, class_qname: str, name: str) -> Set[str]:
        """Conservative dynamic dispatch: the static class's resolution
        plus every subclass override."""
        targets: Set[str] = set()
        resolved = self.resolve_method(class_qname, name)
        if resolved:
            targets.add(resolved)
        for sub in self.transitive_subclasses(class_qname):
            override = self.classes[sub].methods.get(name)
            if override:
                targets.add(override)
        return targets


def source_fingerprint(files: Sequence[Tuple[str, str]]) -> str:
    """Stable hash over ``(relpath, source)`` pairs plus the graph version,
    used to key the on-disk call-graph cache."""
    digest = hashlib.sha256()
    digest.update(GRAPH_VERSION.encode())
    for rel, source in sorted(files):
        digest.update(rel.encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _module_name(package: str, root: Path, file: Path) -> Tuple[str, bool]:
    rel = file.relative_to(root)
    parts = list(rel.parts)
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]
    return ".".join([package, *parts]) if parts else package, is_package


def _resolve_relative(table: ModuleTable, level: int, target: Optional[str]) -> str:
    parts = table.name.split(".")
    if not table.is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _collect_module_table(package: str, root: Path, file: Path,
                          tree: ast.Module, rel_path: str) -> ModuleTable:
    name, is_package = _module_name(package, root, file)
    table = ModuleTable(name=name, path=rel_path, is_package=is_package)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            table.defs[node.name] = f"{name}.{node.name}"
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            table.constants[node.targets[0].id] = node.value.value
        elif isinstance(node, ast.Import):
            for alias in node.names:
                table.imports[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(table, node.level, node.module) \
                if node.level else (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                table.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
    return table


class _Resolver:
    """Name resolution against one module's symbol table."""

    def __init__(self, graph: CallGraph, table: ModuleTable) -> None:
        self._graph = graph
        self._table = table

    def resolve(self, dotted: str) -> str:
        """Resolve the first component through defs/imports; keep the rest."""
        head, _, rest = dotted.partition(".")
        target = self._table.defs.get(head) or self._table.imports.get(head)
        if target is None:
            target = head if self._graph.is_internal(head) else head
        return self.canonicalize(f"{target}.{rest}" if rest else target)

    def canonicalize(self, dotted: str) -> str:
        """Follow re-export chains (``repro.observability.WindowedHistogram``
        imported from ``repro.observability.registry``) to the defining
        module's qname; bounded so import cycles cannot loop."""
        graph = self._graph
        for _ in range(10):
            if dotted in graph.classes or dotted in graph.functions or \
                    dotted in graph.modules or not graph.is_internal(dotted):
                return dotted
            parts = dotted.split(".")
            for i in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:i])
                if prefix in graph.modules:
                    table = graph.modules[prefix]
                    head = parts[i]
                    target = table.defs.get(head) or table.imports.get(head)
                    if target is None:
                        return dotted
                    renamed = ".".join([target, *parts[i + 1:]])
                    if renamed == dotted:
                        return dotted
                    dotted = renamed
                    break
            else:
                return dotted
        return dotted

    def constant(self, name: str) -> Optional[str]:
        """Module-level string constant, following one import hop."""
        if name in self._table.constants:
            return self._table.constants[name]
        imported = self._table.imports.get(name)
        if imported and "." in imported:
            module, _, leaf = imported.rpartition(".")
            other = self._graph.modules.get(module)
            if other:
                return other.constants.get(leaf)
        return None


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every dotted name mentioned in an annotation expression, including
    inside ``Optional[...]`` / ``List[...]`` / string annotations."""
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            key = _expr_key(sub)
            if key:
                names.add(key)
    # Attribute nodes contribute both "a.b" and (via child Name) "a";
    # prefer the full dotted forms.
    return {n for n in names
            if not any(other != n and other.startswith(n + ".") for other in names)}


_TYPING_NOISE = {"Optional", "Union", "List", "Dict", "Set", "Tuple", "Sequence",
                 "Iterable", "Iterator", "Mapping", "MutableMapping", "Callable",
                 "Any", "Type", "FrozenSet", "Deque", "None", "typing"}


def _filter_annotation(resolver: _Resolver, names: Iterable[str]) -> Set[str]:
    out: Set[str] = set()
    for name in names:
        if name.split(".")[0] in _TYPING_NOISE:
            continue
        out.add(resolver.resolve(name))
    return out


class _ValueTyper:
    """Best-effort static types of an expression (class qnames / external
    dotted constructor names), plus pickle-hazard shape flags."""

    def __init__(self, graph: CallGraph, resolver: _Resolver,
                 self_class: Optional[str]) -> None:
        self._graph = graph
        self._resolver = resolver
        self._self_class = self_class
        self._locals: Dict[str, Set[str]] = {}
        self._local_funcs: Dict[str, str] = {}

    def bind_local(self, name: str, types: Set[str]) -> None:
        if types:
            self._locals[name] = types

    def bind_local_func(self, name: str, qname: str) -> None:
        self._local_funcs[name] = qname

    def local_func(self, name: str) -> Optional[str]:
        return self._local_funcs.get(name)

    def self_attr_types(self, attr: str) -> Set[str]:
        if self._self_class is None:
            return set()
        for ancestor in self._graph.mro(self._self_class):
            types = self._graph.classes[ancestor].attr_types.get(attr)
            if types:
                return types
        return set()

    def types_of(self, node: ast.AST) -> Set[str]:
        """Type names of ``node``; empty set means "unknown"."""
        if isinstance(node, ast.Subscript):
            return self.types_of(node.value)  # one container unwrap
        if isinstance(node, ast.IfExp):
            return self.types_of(node.body) | self.types_of(node.orelse)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self.types_of(value)
            return out
        if isinstance(node, ast.Name):
            return set(self._locals.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            key = _expr_key(node)
            if key and key.startswith("self.") and key.count(".") == 1:
                return self.self_attr_types(node.attr)
            return set()
        if isinstance(node, ast.Call):
            target = self._call_target(node)
            if target is None:
                return set()
            if target in self._graph.classes:
                return {target}
            fn = self._graph.functions.get(target)
            if fn is not None:
                returns = getattr(fn.node, "returns", None)
                return _filter_annotation(
                    self._resolver, _annotation_names(returns))
            if not self._graph.is_internal(target):
                return {target}  # external constructor, e.g. threading.Lock
            return set()
        return set()

    def _call_target(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolver.resolve(func.id)
        if isinstance(func, ast.Attribute):
            key = _expr_key(func)
            if key is None:
                return None
            if key.startswith("self.") and key.count(".") == 2:
                # self.attr.method() — resolve through the attribute type
                attr, method = key.split(".")[1:]
                for typ in self.self_attr_types(attr):
                    if typ in self._graph.classes:
                        resolved = self._graph.resolve_method(typ, method)
                        if resolved:
                            return resolved
                return None
            return self._resolver.resolve(key)
        return None


def _value_hazards(node: ast.AST, local_funcs: Dict[str, str]) -> Set[str]:
    """Pickle-hazard shapes of an assigned value expression."""
    hazards: Set[str] = set()
    if isinstance(node, ast.Lambda):
        hazards.add("lambda")
    elif isinstance(node, ast.GeneratorExp):
        hazards.add("generator")
    elif isinstance(node, ast.Name) and node.id in local_funcs:
        hazards.add("nested-def")
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            hazards.add("file-handle")
    return hazards


def _is_op_forwarder(node: ast.AST) -> bool:
    """True when the function forwards a non-constant first argument into a
    ``.submit(...)`` / ``.call(...)`` call (worker op indirection)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr in ("submit", "call") and sub.args \
                and isinstance(sub.args[0], ast.Name):
            return True
    return False


def _string_args(node: ast.Call, resolver: _Resolver, depth: int = 3) -> Set[str]:
    """String constants among the call's arguments, one to three levels deep
    through tuple/list/dict containers and resolved ``NAME`` constants."""
    out: Set[str] = set()

    def scan(expr: ast.AST, remaining: int) -> None:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            out.add(expr.value)
        elif isinstance(expr, ast.Name):
            constant = resolver.constant(expr.id)
            if constant is not None:
                out.add(constant)
        elif remaining > 0 and isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                scan(element, remaining - 1)
        elif remaining > 0 and isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    scan(value, remaining - 1)
        elif remaining > 0 and isinstance(expr, ast.Starred):
            scan(expr.value, remaining - 1)

    for arg in node.args:
        scan(arg, depth)
    for keyword in node.keywords:
        scan(keyword.value, depth)
    return out


class _EdgeVisitor(ast.NodeVisitor):
    """Walks one function body collecting edges, raises, and block sites."""

    def __init__(self, graph: CallGraph, resolver: _Resolver,
                 fn: FunctionInfo, typer: _ValueTyper,
                 op_forwarders: Set[str], summary_methods: Dict[str, Set[str]],
                 worker_call_methods: Set[str]) -> None:
        self._graph = graph
        self._resolver = resolver
        self._fn = fn
        self._typer = typer
        self._op_forwarders = op_forwarders
        self._summary_methods = summary_methods
        self._worker_call_methods = worker_call_methods
        self._held: List[str] = []
        self._handlers: List[FrozenSet[str]] = []

    # -- context tracking ------------------------------------------------ #

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            key = _expr_key(item.context_expr)
            if key and _LOCKISH.search(key.rsplit(".", 1)[-1]):
                self._held.append(key)
                pushed += 1
            if item.context_expr is not None:
                self.visit(item.context_expr)
        for child in node.body:
            self.visit(child)
        if pushed:
            del self._held[-pushed:]

    def visit_Try(self, node: ast.Try) -> None:
        caught: Set[str] = set()
        for handler in node.handlers:
            caught |= self._handler_types(handler.type)
        self._handlers.append(frozenset(caught))
        for child in node.body:
            self.visit(child)
        self._handlers.pop()
        for handler in node.handlers:
            for child in handler.body:
                self.visit(child)
        for child in node.orelse + node.finalbody:
            self.visit(child)

    visit_TryStar = visit_Try

    def _handler_types(self, expr: Optional[ast.AST]) -> Set[str]:
        if expr is None:
            return {"BaseException"}
        if isinstance(expr, ast.Tuple):
            out: Set[str] = set()
            for element in expr.elts:
                out |= self._handler_types(element)
            return out
        key = _expr_key(expr)
        if key is None:
            return set()
        resolved = self._resolver.resolve(key)
        return {resolved.rsplit(".", 1)[-1]}

    def _nested(self, node) -> None:
        # A nested def's body runs later, outside the current lock/handler
        # context; its own edges are collected when the nested FunctionInfo
        # is visited.
        return None

    visit_FunctionDef = _nested
    visit_AsyncFunctionDef = _nested
    visit_Lambda = _nested

    # -- raises ---------------------------------------------------------- #

    def visit_Raise(self, node: ast.Raise) -> None:
        name: Optional[str] = None
        if node.exc is None:
            name = None  # bare re-raise inside a handler; ignored (documented)
        elif isinstance(node.exc, ast.Call):
            name = _expr_key(node.exc.func)
        elif isinstance(node.exc, (ast.Name, ast.Attribute)):
            name = _expr_key(node.exc)
        if name:
            resolved = self._resolver.resolve(name)
            self._graph.raises.setdefault(self._fn.qname, []).append(RaiseSite(
                exc=resolved.rsplit(".", 1)[-1], lineno=node.lineno,
                handlers=tuple(self._handlers)))
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        targets, external = self._resolve_call(node)
        for target in sorted(targets):
            self._add_edge(target, node.lineno, "direct")
        if not targets and external is not None:
            self._check_external_blocking(node, external)
            self._check_conversion(node, external)
        self._check_indirection(node, targets)
        self.generic_visit(node)

    def _add_edge(self, callee: str, lineno: int, kind: str) -> None:
        self._graph.calls.append(CallSite(
            caller=self._fn.qname, callee=callee, path=self._fn.path,
            lineno=lineno, kind=kind, held=tuple(self._held),
            handlers=tuple(self._handlers)))

    def _resolve_call(self, node: ast.Call) -> Tuple[Set[str], Optional[str]]:
        """Internal callee qnames, plus the external dotted name when the
        call resolves outside the package (``None`` when unresolvable)."""
        func = node.func
        if isinstance(func, ast.Name):
            local = self._typer.local_func(func.id)
            if local:
                return {local}, None
            resolved = self._resolver.resolve(func.id)
            if resolved.rsplit(".", 1)[-1] == "partial" and node.args:
                return self._partial_target(node), resolved
            return self._targets_for(resolved), \
                None if self._graph.is_internal(resolved) else resolved
        if isinstance(func, ast.Attribute):
            receiver, attr = func.value, func.attr
            if attr == "partial" and node.args:
                # functools.partial(f, ...) binds f for a later call site;
                # the edge belongs here, where the arguments flow in.
                return self._partial_target(node), _expr_key(func)
            if isinstance(receiver, ast.Constant):
                return set(), None  # "sep".join(...) and friends
            if isinstance(receiver, ast.Name) and receiver.id == "self" \
                    and self._fn.cls is not None:
                return self._graph.dispatch(self._fn.cls, attr), None
            receiver_types = self._typer.types_of(receiver)
            internal = {t for t in receiver_types if t in self._graph.classes}
            if internal:
                targets: Set[str] = set()
                for cls in internal:
                    targets |= self._graph.dispatch(cls, attr)
                return targets, None
            if receiver_types:
                # Externally typed receiver (e.g. queue.Queue) — keep the
                # dotted name so blocking heuristics can see the method.
                external_type = sorted(receiver_types)[0]
                return set(), f"{external_type}.{attr}"
            key = _expr_key(func)
            if key is not None and not key.startswith("self."):
                resolved = self._resolver.resolve(key)
                targets = self._targets_for(resolved)
                if targets:
                    return targets, None
                return set(), None if self._graph.is_internal(resolved) \
                    else resolved
            return set(), key
        return set(), None

    def _partial_target(self, node: ast.Call) -> Set[str]:
        """Internal function bound by a ``partial(f, ...)`` call, if any."""
        inner = _expr_key(node.args[0])
        if not inner:
            return set()
        if inner.startswith("self.") and self._fn.cls is not None \
                and inner.count(".") == 1:
            return self._graph.dispatch(self._fn.cls, inner.split(".", 1)[1])
        local = self._typer.local_func(inner)
        if local:
            return {local}
        inner_resolved = self._resolver.resolve(inner)
        if inner_resolved in self._graph.functions:
            return {inner_resolved}
        return self._targets_for(inner_resolved)

    def _targets_for(self, resolved: str) -> Set[str]:
        if resolved in self._graph.functions:
            return {resolved}
        if resolved in self._graph.classes:
            init = self._graph.resolve_method(resolved, "__init__")
            return {init} if init else set()
        # Class.method / module.function one level up
        if "." in resolved:
            owner, _, leaf = resolved.rpartition(".")
            if owner in self._graph.classes:
                method = self._graph.resolve_method(owner, leaf)
                if method:
                    return {method}
        return set()

    # -- external blocking / conversions --------------------------------- #

    def _check_external_blocking(self, node: ast.Call, external: str) -> None:
        name = external.rsplit(".", 1)[-1]
        if name not in _BLOCKING_ATTRS:
            return
        if isinstance(node.func, ast.Name) and name != "sleep":
            return
        if name == "get":
            queue_shaped = not node.args or \
                any(kw.arg in ("block", "timeout") for kw in node.keywords)
            if not queue_shaped:
                return
        if name == "join" and node.args:
            return
        self._graph.blocks.setdefault(self._fn.qname, []).append(BlockSite(
            desc=external if "." in external else name, lineno=node.lineno,
            held=tuple(self._held)))

    def _check_conversion(self, node: ast.Call, external: str) -> None:
        """``int(x)`` / ``float(x)`` on data-flow arguments (names,
        attributes, subscripts) may raise ValueError/TypeError; computed
        numeric arguments (calls, arithmetic) are assumed safe."""
        if external not in ("int", "float") or not node.args:
            return
        if not isinstance(node.args[0], (ast.Name, ast.Attribute, ast.Subscript)):
            return
        for exc in ("ValueError", "TypeError"):
            self._graph.raises.setdefault(self._fn.qname, []).append(RaiseSite(
                exc=exc, lineno=node.lineno, handlers=tuple(self._handlers),
                desc=f"{external}() conversion"))

    # -- worker-op indirection ------------------------------------------- #

    def _check_indirection(self, node: ast.Call, targets: Set[str]) -> None:
        forwarding = bool(targets & self._op_forwarders)
        worker_boundary = bool(targets & self._worker_call_methods)
        if not forwarding and isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("submit", "call") and not targets:
            # Untyped receiver with a submit/call shape: still scan, the
            # op table must over-approximate.
            forwarding = True
            worker_boundary = True
        if not forwarding:
            return
        for op in sorted(_string_args(node, self._resolver)):
            if _RESERVED_OP.match(op):
                continue
            for target in sorted(self._summary_methods.get(op, ())):
                self._add_edge(target, node.lineno, "indirect")
        if worker_boundary:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        self._graph.submit_lambdas.append(
                            (self._fn.qname, self._fn.path, sub.lineno))


def _collect_functions(graph: CallGraph, module: ModuleTable,
                       tree: ast.Module) -> None:
    def add(node, qname: str, cls: Optional[str]) -> None:
        graph.functions[qname] = FunctionInfo(
            qname=qname, module=module.name, path=module.path,
            lineno=node.lineno, name=node.name, node=node, cls=cls)
        for child in ast.walk(node):
            if child is not node and \
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_q = f"{qname}.{child.name}"
                if nested_q not in graph.functions:
                    graph.functions[nested_q] = FunctionInfo(
                        qname=nested_q, module=module.name, path=module.path,
                        lineno=child.lineno, name=child.name, node=child,
                        cls=cls)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, f"{module.name}.{node.name}", None)
        elif isinstance(node, ast.ClassDef):
            cls_qname = f"{module.name}.{node.name}"
            info = ClassInfo(qname=cls_qname, module=module.name,
                             path=module.path, lineno=node.lineno,
                             name=node.name)
            graph.classes[cls_qname] = info
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_q = f"{cls_qname}.{item.name}"
                    info.methods[item.name] = method_q
                    add(item, method_q, cls_qname)


def _collect_class_details(graph: CallGraph,
                           class_nodes: Dict[str, ast.ClassDef]) -> None:
    """Second pass: resolve bases, subclass map, attribute types/hazards."""
    for qname, node in class_nodes.items():
        info = graph.classes[qname]
        resolver = _Resolver(graph, graph.modules[info.module])
        for base in node.bases:
            key = _expr_key(base)
            if key:
                resolved = resolver.resolve(key)
                if resolved in graph.classes:
                    info.bases.append(resolved)
                    graph.subclasses.setdefault(resolved, set()).add(qname)
        # class-level fields (dataclass style and plain class attributes)
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                types = _filter_annotation(
                    resolver, _annotation_names(item.annotation))
                _record_attr(graph, info, item.target.id, types, set(),
                             item.lineno)
            elif isinstance(item, ast.Assign):
                typer = _ValueTyper(graph, resolver, qname)
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        _record_attr(graph, info, target.id,
                                     typer.types_of(item.value),
                                     _value_hazards(item.value, {}),
                                     item.lineno)
    # instance attributes: self.<attr> = ... in any method
    for qname, node in class_nodes.items():
        info = graph.classes[qname]
        resolver = _Resolver(graph, graph.modules[info.module])
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            typer = _ValueTyper(graph, resolver, qname)
            local_funcs = {c.name: f"{qname}.{item.name}.{c.name}"
                           for c in ast.walk(item)
                           if c is not item and
                           isinstance(c, (ast.FunctionDef, ast.AsyncFunctionDef))}
            param_types = _param_annotation_types(resolver, item)
            for stmt in ast.walk(item):
                target_attr: Optional[str] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(stmt, ast.Assign) and stmt.targets:
                    for target in stmt.targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self":
                            target_attr = target.attr
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Attribute) and \
                        isinstance(stmt.target.value, ast.Name) and \
                        stmt.target.value.id == "self":
                    target_attr = stmt.target.attr
                    value = stmt.value
                    annotation = stmt.annotation
                if target_attr is None:
                    continue
                types: Set[str] = set()
                if annotation is not None:
                    types |= _filter_annotation(
                        resolver, _annotation_names(annotation))
                if value is not None:
                    types |= typer.types_of(value)
                    if isinstance(value, ast.Name) and value.id in param_types:
                        types |= param_types[value.id]
                hazards = _value_hazards(value, local_funcs) \
                    if value is not None else set()
                _record_attr(graph, info, target_attr, types, hazards,
                             stmt.lineno)


def _record_attr(graph: CallGraph, info: ClassInfo, attr: str,
                 types: Set[str], hazards: Set[str], lineno: int) -> None:
    if types:
        info.attr_types.setdefault(attr, set()).update(types)
    if hazards:
        info.attr_hazards.setdefault(attr, set()).update(hazards)
    info.attr_sites.setdefault(attr, (info.path, lineno))


def _param_annotation_types(resolver: _Resolver, node) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            types = _filter_annotation(resolver,
                                       _annotation_names(arg.annotation))
            if types:
                out[arg.arg] = types
    return out


def _summary_method_table(graph: CallGraph) -> Dict[str, Set[str]]:
    """Worker-op name → candidate method qnames.

    Candidates are methods of the summary hierarchy (subclasses of any
    class named ``TemporalGraphSummary``) when one exists, otherwise any
    internal class method of that name — the over-approximation keeps the
    table useful for synthetic test packages.
    """
    roots = [q for q, c in graph.classes.items()
             if c.name == "TemporalGraphSummary"]
    candidates: Dict[str, Set[str]] = {}
    if roots:
        pool: Set[str] = set()
        for root in roots:
            pool.add(root)
            pool |= graph.transitive_subclasses(root)
        for cls in pool:
            for name, qname in graph.classes[cls].methods.items():
                candidates.setdefault(name, set()).add(qname)
    else:
        for cls in graph.classes.values():
            for name, qname in cls.methods.items():
                candidates.setdefault(name, set()).add(qname)
    return candidates


def _worker_call_methods(graph: CallGraph) -> Set[str]:
    """Qnames of ``submit``/``call`` methods on the worker hierarchy."""
    out: Set[str] = set()
    for cls in graph.classes.values():
        if "ShardWorker" in cls.name or cls.name == "QueueWorker":
            for name in ("submit", "call"):
                if name in cls.methods:
                    out.add(cls.methods[name])
    return out


def _boundary_factories(graph: CallGraph, fn: FunctionInfo,
                        resolver: _Resolver, typer: _ValueTyper) -> None:
    """Record factory classes flowing into worker/process boundaries."""
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func_key = _expr_key(node.func)
        if func_key is None:
            continue
        resolved = resolver.resolve(func_key.removeprefix("self."))
        leaf = resolved.rsplit(".", 1)[-1]
        if leaf not in ("make_shard_worker", "ProcessShardWorker"):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for typ in typer.types_of(arg):
                if typ in graph.classes and \
                        "__call__" in graph.classes[typ].methods:
                    graph.boundary_factories.add(typ)


def _local_assignment_types(resolver: _Resolver, typer: _ValueTyper, node,
                            param_types: Dict[str, Set[str]]) -> None:
    """Single pass of flow-insensitive local inference before edge walking."""
    for name, types in param_types.items():
        typer.bind_local(name, types)
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            typer.bind_local(stmt.targets[0].id, typer.types_of(stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            names = _annotation_names(stmt.annotation)
            typer.bind_local(stmt.target.id,
                             _filter_annotation(resolver, names))


def _package_sources(root: Path, repo_root: Optional[Path] = None
                     ) -> List[Tuple[Path, str, str]]:
    """List the package's ``(file, relpath, source)`` triples, sorted."""
    files: List[Tuple[Path, str, str]] = []
    for file in sorted(root.resolve().rglob("*.py")):
        if any(part.startswith(".") for part in file.parts):
            continue
        source = file.read_text(encoding="utf-8")
        if repo_root is not None:
            try:
                rel = file.relative_to(repo_root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
        else:
            rel = file.as_posix()
        files.append((file, rel, source))
    return files


def package_fingerprint(root: Path, repo_root: Optional[Path] = None) -> str:
    """Fingerprint of a package's *current* sources.

    Matches the ``source_key`` a fresh :func:`build_package_graph` over the
    same tree would record, so a cached graph is valid exactly when the
    fingerprints agree.
    """
    return source_fingerprint(
        [(rel, src) for _, rel, src in _package_sources(root, repo_root)])


def build_package_graph(root: Path, package: Optional[str] = None,
                        repo_root: Optional[Path] = None) -> CallGraph:
    """Build the call graph for the package rooted at ``root``.

    ``root`` is the package directory itself (e.g. ``src/repro``); the
    package name defaults to the directory name.  Paths in the graph are
    relative to ``repo_root`` when given (stable finding/baseline keys).
    """
    root = root.resolve()
    package = package or root.name
    files = _package_sources(root, repo_root)

    graph = CallGraph(package=package, root=str(root),
                      source_key=source_fingerprint(
                          [(rel, src) for _, rel, src in files]))

    trees: Dict[str, ast.Module] = {}
    for file, rel, source in files:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # per-file rules report the syntax error
        table = _collect_module_table(package, root, file, tree, rel)
        graph.modules[table.name] = table
        trees[table.name] = tree

    class_nodes: Dict[str, ast.ClassDef] = {}
    for name, tree in trees.items():
        _collect_functions(graph, graph.modules[name], tree)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                class_nodes[f"{name}.{node.name}"] = node

    _collect_class_details(graph, class_nodes)

    op_forwarders = {q for q, fn in graph.functions.items()
                     if _is_op_forwarder(fn.node)}
    summary_methods = _summary_method_table(graph)
    worker_calls = _worker_call_methods(graph)

    for fn in list(graph.functions.values()):
        resolver = _Resolver(graph, graph.modules[fn.module])
        typer = _ValueTyper(graph, resolver, fn.cls)
        # bind nested defs to their graph qnames for local-name calls
        for child in ast.walk(fn.node):
            if child is not fn.node and \
                    isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_q = f"{fn.qname}.{child.name}"
                if nested_q in graph.functions:
                    typer.bind_local_func(child.name, nested_q)
        _local_assignment_types(resolver, typer, fn.node,
                                _param_annotation_types(resolver, fn.node))
        visitor = _EdgeVisitor(graph, resolver, fn, typer, op_forwarders,
                               summary_methods, worker_calls)
        for stmt in getattr(fn.node, "body", []):
            visitor.visit(stmt)
        _boundary_factories(graph, fn, resolver, typer)
        if fn.name == "__call__" and fn.cls in graph.classes:
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    graph.classes[fn.cls].call_returns |= {
                        t for t in typer.types_of(stmt.value)
                        if t in graph.classes}
    return graph
