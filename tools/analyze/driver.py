"""Driver for the ``repro-lint`` rules: walking, suppression, baseline, CLI.

The flow per file is parse → run every rule → drop findings covered by an
inline ``# repro-lint: ok RULE`` suppression.  Across the run, findings that
match a justified entry in the committed baseline
(``tools/analyze/baseline.json``) are accepted; everything else fails the
build.  Baseline entries match on ``(rule, path, symbol)`` — symbol is the
enclosing function reported by the rule — so they survive unrelated line
drift but die with the code they describe; every entry must carry a
non-empty ``justification`` and entries matching nothing are reported as
stale warnings.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import RULES, Finding, _Context

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Default committed baseline of accepted findings.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*ok\s+([A-Z]{2,8}\d{3}(?:\s*,\s*[A-Z]{2,8}\d{3})*)")


def _scan_comments(source: str) -> Dict[int, str]:
    """Map line number → comment text, using ``tokenize`` so comments inside
    string literals are never misread as annotations."""
    comments: Dict[int, str] = {}
    # On malformed input the AST parse reports the real syntax problem.
    with contextlib.suppress(tokenize.TokenError, IndentationError, SyntaxError):
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    return comments


def _suppressions(comments: Dict[int, str], lines: Sequence[str]) -> Dict[int, set]:
    """Lines covered by an inline suppression: the comment's own line, plus
    the following line when the comment stands alone on its line."""
    covered: Dict[int, set] = {}
    for lineno, comment in comments.items():
        match = _SUPPRESS.search(comment)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        covered.setdefault(lineno, set()).update(rules)
        if lineno - 1 < len(lines) and lines[lineno - 1].lstrip().startswith("#"):
            covered.setdefault(lineno + 1, set()).update(rules)
    return covered


def analyze_source(source: str, path: str) -> List[Finding]:
    """Run every rule over one file's source; apply inline suppressions."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("SYNTAX", path, exc.lineno or 0, "",
                        f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    comments = _scan_comments(source)
    ctx = _Context(tree, path, lines, comments)
    findings: List[Finding] = []
    for checker, _description in RULES.values():
        findings.extend(checker(ctx))
    covered = _suppressions(comments, lines)
    kept = [f for f in findings if f.rule not in covered.get(f.line, ())]
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _relative(path: Path) -> str:
    """Repo-root-relative posix path when possible (stable baseline keys)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if not any(part.startswith(".")
                                         for part in p.parts))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Iterable[Path]) -> List[Finding]:
    """Analyze every Python file under ``paths``; return all findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, _relative(file_path)))
    return findings


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #

class BaselineError(Exception):
    """Raised when the baseline file is malformed or unjustified."""


def load_baseline(path: Path) -> List[dict]:
    """Load and validate the baseline: a list of entries, each with ``rule``,
    ``path``, ``symbol`` and a non-empty ``justification``."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: expected a JSON list of entries")
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entry {index} is not an object")
        for key in ("rule", "path", "symbol", "justification"):
            if key not in entry:
                raise BaselineError(f"{path}: entry {index} lacks {key!r}")
        if not str(entry["justification"]).strip():
            raise BaselineError(
                f"{path}: entry {index} ({entry['rule']} {entry['path']}) "
                f"has an empty justification; every baselined finding must "
                f"say why it is accepted")
    return entries


def apply_baseline(findings: Sequence[Finding], entries: Sequence[dict]
                   ) -> Tuple[List[Finding], List[dict]]:
    """Split findings into (new, ...) and report stale baseline entries.

    Returns ``(new_findings, stale_entries)``: findings not matched by any
    entry, and entries that matched no finding (candidates for deletion).
    """
    keys = {(e["rule"], e["path"], e["symbol"]): False for e in entries}
    new: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol)
        if key in keys:
            keys[key] = True
        else:
            new.append(finding)
    stale = [e for e in entries
             if not keys[(e["rule"], e["path"], e["symbol"])]]
    return new, stale


def emit_baseline(findings: Sequence[Finding]) -> str:
    """JSON skeleton covering ``findings`` (justifications left to fill in)."""
    seen = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol)
        if key not in seen:
            seen[key] = {"rule": finding.rule, "path": finding.path,
                         "symbol": finding.symbol,
                         "justification": ""}
    return json.dumps(list(seen.values()), indent=2) + "\n"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m tools.analyze``; returns the exit status.

    0 — clean (every finding suppressed or baselined with justification);
    1 — new findings; 2 — malformed baseline or arguments.
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-lint: project-specific static analysis")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file of accepted findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report every finding")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON instead of text")
    parser.add_argument("--emit-baseline", action="store_true",
                        help="print a baseline skeleton for current findings "
                             "(justifications must be filled in by hand)")
    args = parser.parse_args(argv)

    findings = analyze_paths([Path(p) for p in args.paths])
    if args.emit_baseline:
        sys.stdout.write(emit_baseline(findings))
        return 0

    stale: List[dict] = []
    if not args.no_baseline:
        try:
            entries = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, entries)

    if args.as_json:
        sys.stdout.write(json.dumps(
            [finding.__dict__ for finding in findings], indent=2) + "\n")
    else:
        for finding in findings:
            print(finding.render())
    for entry in stale:
        print(f"repro-lint: stale baseline entry matches nothing: "
              f"{entry['rule']} {entry['path']} [{entry['symbol']}] — "
              f"delete it", file=sys.stderr)
    if findings:
        print(f"repro-lint: {len(findings)} new finding(s); fix them, add an "
              f"inline '# repro-lint: ok <RULE>' with a reason, or baseline "
              f"them with a justification", file=sys.stderr)
        return 1
    return 0
