"""Driver for the ``repro-lint`` rules: walking, suppression, baseline, CLI.

The flow per file is parse → run every rule → drop findings covered by an
inline ``# repro-lint: ok RULE`` suppression.  When the analyzed set
touches ``src/repro``, the interprocedural rules (CONC004/ERR002/PICK001,
:mod:`tools.analyze.propagate`) additionally run over the whole-package
call graph (:mod:`tools.analyze.callgraph`) — optionally loaded from an
on-disk cache keyed on the package's source fingerprint (``--cache``) —
and their findings honor the same inline suppressions.  Across the run,
findings that match a justified entry in the committed baseline
(``tools/analyze/baseline.json``) are accepted; everything else fails the
build.  Baseline entries match on ``(rule, path, symbol)`` — symbol is the
enclosing function reported by the rule — so they survive unrelated line
drift but die with the code they describe; every entry must carry a
non-empty ``justification`` and entries matching nothing are reported as
stale warnings — promoted to hard errors (exit 2) under ``--ci`` so dead
suppressions cannot rot in the repository.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import pickle
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import RULES, Finding, _Context

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Package the interprocedural rules run over.
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: Default committed baseline of accepted findings.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*ok\s+([A-Z]{2,8}\d{3}(?:\s*,\s*[A-Z]{2,8}\d{3})*)")


def _scan_comments(source: str) -> Dict[int, str]:
    """Map line number → comment text, using ``tokenize`` so comments inside
    string literals are never misread as annotations."""
    comments: Dict[int, str] = {}
    # On malformed input the AST parse reports the real syntax problem.
    with contextlib.suppress(tokenize.TokenError, IndentationError, SyntaxError):
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    return comments


def _suppressions(comments: Dict[int, str], lines: Sequence[str]) -> Dict[int, set]:
    """Lines covered by an inline suppression: the comment's own line, plus
    the following line when the comment stands alone on its line."""
    covered: Dict[int, set] = {}
    for lineno, comment in comments.items():
        match = _SUPPRESS.search(comment)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        covered.setdefault(lineno, set()).update(rules)
        if lineno - 1 < len(lines) and lines[lineno - 1].lstrip().startswith("#"):
            covered.setdefault(lineno + 1, set()).update(rules)
    return covered


def analyze_source(source: str, path: str,
                   suppressed: Optional[List[Finding]] = None) -> List[Finding]:
    """Run every rule over one file's source; apply inline suppressions.

    When ``suppressed`` is given, findings dropped by an inline
    suppression are appended to it (for per-rule accounting).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("SYNTAX", path, exc.lineno or 0, "",
                        f"file does not parse: {exc.msg}")]
    lines = source.splitlines()
    comments = _scan_comments(source)
    ctx = _Context(tree, path, lines, comments)
    findings: List[Finding] = []
    for checker, _description in RULES.values():
        findings.extend(checker(ctx))
    covered = _suppressions(comments, lines)
    kept = []
    for finding in findings:
        if finding.rule in covered.get(finding.line, ()):
            if suppressed is not None:
                suppressed.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _relative(path: Path) -> str:
    """Repo-root-relative posix path when possible (stable baseline keys)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if not any(part.startswith(".")
                                         for part in p.parts))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Iterable[Path],
                  suppressed: Optional[List[Finding]] = None) -> List[Finding]:
    """Analyze every Python file under ``paths``; return all findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, _relative(file_path),
                                       suppressed))
    return findings


# --------------------------------------------------------------------- #
# interprocedural rules (call-graph layer)
# --------------------------------------------------------------------- #

def load_or_build_graph(package_root: Optional[Path] = None, *,
                        cache_path: Optional[Path] = None):
    """Build the package call graph, or reuse a fingerprint-valid cache.

    Returns ``(graph, from_cache)``.  The cache (a pickled
    :class:`~tools.analyze.callgraph.CallGraph`) is accepted only when its
    recorded ``source_key`` matches the current package fingerprint, which
    also folds in ``GRAPH_VERSION`` — so both source edits and analyzer
    format changes invalidate it.  A corrupt cache file is treated as a
    miss, never an error.
    """
    from .callgraph import CallGraph, build_package_graph, package_fingerprint
    if package_root is None:
        package_root = PACKAGE_ROOT
    if cache_path is not None and cache_path.exists():
        with contextlib.suppress(Exception):
            cached = pickle.loads(cache_path.read_bytes())
            if isinstance(cached, CallGraph) and cached.source_key == \
                    package_fingerprint(package_root, REPO_ROOT):
                return cached, True
    graph = build_package_graph(package_root, repo_root=REPO_ROOT)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_bytes(pickle.dumps(graph, pickle.HIGHEST_PROTOCOL))
    return graph, False


def interprocedural_findings(analyzed: Set[str], *,
                             cache_path: Optional[Path] = None,
                             suppressed: Optional[List[Finding]] = None
                             ) -> List[Finding]:
    """Run CONC004/ERR002/PICK001 when ``analyzed`` touches ``src/repro``.

    The graph always spans the whole package (the rules are interprocedural
    — a single file in isolation has no call graph), but only findings
    located in one of the ``analyzed`` repo-relative paths are returned, so
    ``python -m tools.analyze src/repro/serving/engine.py`` reports that
    file's chains only.  Inline suppressions on the finding line apply
    exactly as for the per-file rules.
    """
    from .propagate import run_interprocedural

    def _in_package(rel: str) -> bool:
        with contextlib.suppress(OSError, ValueError):
            return (REPO_ROOT / rel).resolve().is_relative_to(PACKAGE_ROOT)
        return False

    if not PACKAGE_ROOT.is_dir():
        return []
    in_package = {p for p in analyzed if _in_package(p)}
    if not in_package:
        return []
    graph, _ = load_or_build_graph(cache_path=cache_path)
    kept: List[Finding] = []
    covered_by_path: Dict[str, Dict[int, set]] = {}
    for finding in run_interprocedural(graph):
        if finding.path not in in_package:
            continue
        if finding.path not in covered_by_path:
            source = (REPO_ROOT / finding.path).read_text(encoding="utf-8")
            covered_by_path[finding.path] = _suppressions(
                _scan_comments(source), source.splitlines())
        if finding.rule in covered_by_path[finding.path].get(finding.line, ()):
            if suppressed is not None:
                suppressed.append(finding)
        else:
            kept.append(finding)
    return kept


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #

class BaselineError(Exception):
    """Raised when the baseline file is malformed or unjustified."""


def load_baseline(path: Path) -> List[dict]:
    """Load and validate the baseline: a list of entries, each with ``rule``,
    ``path``, ``symbol`` and a non-empty ``justification``."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return []
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: expected a JSON list of entries")
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entry {index} is not an object")
        for key in ("rule", "path", "symbol", "justification"):
            if key not in entry:
                raise BaselineError(f"{path}: entry {index} lacks {key!r}")
        if not str(entry["justification"]).strip():
            raise BaselineError(
                f"{path}: entry {index} ({entry['rule']} {entry['path']}) "
                f"has an empty justification; every baselined finding must "
                f"say why it is accepted")
    return entries


def apply_baseline(findings: Sequence[Finding], entries: Sequence[dict]
                   ) -> Tuple[List[Finding], List[dict]]:
    """Split findings into (new, ...) and report stale baseline entries.

    Returns ``(new_findings, stale_entries)``: findings not matched by any
    entry, and entries that matched no finding (candidates for deletion).
    """
    keys = {(e["rule"], e["path"], e["symbol"]): False for e in entries}
    new: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol)
        if key in keys:
            keys[key] = True
        else:
            new.append(finding)
    stale = [e for e in entries
             if not keys[(e["rule"], e["path"], e["symbol"])]]
    return new, stale


def emit_baseline(findings: Sequence[Finding]) -> str:
    """JSON skeleton covering ``findings`` (justifications left to fill in)."""
    seen = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.symbol)
        if key not in seen:
            seen[key] = {"rule": finding.rule, "path": finding.path,
                         "symbol": finding.symbol,
                         "justification": ""}
    return json.dumps(list(seen.values()), indent=2) + "\n"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def _rule_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def render_counts(new: Sequence[Finding], suppressed: Sequence[Finding],
                  baselined: Sequence[Finding]) -> str:
    """Per-rule ``new/suppressed/baselined`` table (for CI job summaries)."""
    from .propagate import INTER_RULES
    new_c, sup_c, base_c = (_rule_counts(f) for f in
                            (new, suppressed, baselined))
    rules = sorted(set(RULES) | set(INTER_RULES)
                   | set(new_c) | set(sup_c) | set(base_c))
    lines = ["rule      new  suppressed  baselined"]
    for rule in rules:
        lines.append(f"{rule:<8} {new_c.get(rule, 0):>4}  "
                     f"{sup_c.get(rule, 0):>10}  {base_c.get(rule, 0):>9}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m tools.analyze``; returns the exit status.

    0 — clean (every finding suppressed or baselined with justification);
    1 — new findings; 2 — malformed baseline or arguments, or (with
    ``--ci``) stale baseline entries.
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-lint: project-specific static analysis")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file of accepted findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report every finding")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON instead of text")
    parser.add_argument("--emit-baseline", action="store_true",
                        help="print a baseline skeleton for current findings "
                             "(justifications must be filled in by hand)")
    parser.add_argument("--ci", action="store_true",
                        help="strict CI mode: stale baseline entries become "
                             "errors (exit 2) instead of warnings")
    parser.add_argument("--cache", type=Path, default=None,
                        help="call-graph cache file; reused when the package "
                             "source fingerprint matches, rebuilt otherwise")
    parser.add_argument("--counts", action="store_true",
                        help="print a per-rule finding/suppression/baseline "
                             "count table after the findings")
    parser.add_argument("--no-interprocedural", action="store_true",
                        help="skip the call-graph rules "
                             "(CONC004/ERR002/PICK001)")
    args = parser.parse_args(argv)

    paths = [Path(p) for p in args.paths]
    suppressed: List[Finding] = []
    findings = analyze_paths(paths, suppressed)
    if not args.no_interprocedural:
        analyzed = {_relative(p) for p in iter_python_files(paths)}
        findings.extend(interprocedural_findings(
            analyzed, cache_path=args.cache, suppressed=suppressed))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.emit_baseline:
        sys.stdout.write(emit_baseline(findings))
        return 0

    stale: List[dict] = []
    baselined: List[Finding] = []
    if not args.no_baseline:
        try:
            entries = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        new, stale = apply_baseline(findings, entries)
        matched = {(f.rule, f.path, f.line, f.message) for f in new}
        baselined = [f for f in findings
                     if (f.rule, f.path, f.line, f.message) not in matched]
        findings = new

    if args.as_json:
        sys.stdout.write(json.dumps(
            [finding.__dict__ for finding in findings], indent=2) + "\n")
    else:
        for finding in findings:
            print(finding.render())
    if args.counts:
        sys.stdout.write(render_counts(findings, suppressed, baselined))
    severity = "error" if args.ci else "warning"
    for entry in stale:
        print(f"repro-lint: {severity}: stale baseline entry matches "
              f"nothing: {entry['rule']} {entry['path']} "
              f"[{entry['symbol']}] — delete it", file=sys.stderr)
    if findings:
        print(f"repro-lint: {len(findings)} new finding(s); fix them, add an "
              f"inline '# repro-lint: ok <RULE>' with a reason, or baseline "
              f"them with a justification", file=sys.stderr)
        return 1
    if stale and args.ci:
        print(f"repro-lint: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} under --ci; delete "
              f"them from the baseline", file=sys.stderr)
        return 2
    return 0
