"""Runtime lock-order detector: instrumented locks + the global order graph.

Static rules cannot see dynamic lock ordering, so this module provides the
runtime half of repro-lint: drop-in ``Lock``/``RLock``/``Condition``
replacements that record, per thread, the stack of locks currently held and
every *ordering edge* ``A → B`` ("B was acquired while A was held", with the
acquisition call stack that first produced it).  From those edges the
:class:`LockGraph` reports:

* **cycles** — two code paths acquiring the same locks in opposite orders,
  the classic potential deadlock, flagged even when the unlucky interleaving
  never happened during the run;
* **waits-while-holding** — a thread parking in ``Condition.wait`` while
  still holding *another* instrumented lock, which keeps that lock pinned
  for the whole wait (the runtime shape of rule CONC001).

Locks are identified by **creation site** (module and line), not by
instance: every per-shard lock born at the same line is one node, which is
what makes cross-instance ordering cycles visible at all.

Usage (the ``lock_monitor`` fixture in ``tests/conftest.py`` does this for
the serving/sharding stress tests)::

    graph = LockGraph()
    uninstall = install(graph)          # patches threading.Lock/RLock/Condition
    try:
        ...  # build engines, run the workload
    finally:
        uninstall()
    graph.assert_clean()                # raises with a report on cycles

Only locks created from modules matching the ``modules`` prefixes (default:
the ``repro`` package) are instrumented; stdlib machinery such as
``queue.Queue`` keeps the real primitives, so the graph stays signal.
"""

from __future__ import annotations

import sys
import threading
import traceback
import time
from typing import Callable, Dict, List, Optional, Tuple

# Real primitives, captured at import time so instrumented wrappers keep
# working while threading.* is monkeypatched.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

#: Frames kept in the sample stack stored per ordering edge.
_STACK_DEPTH = 8


def _short_stack() -> List[str]:
    """A compact acquisition stack: repo frames only, innermost last."""
    frames = traceback.extract_stack()[:-3]  # drop lockgraph internals
    return [f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
            for frame in frames[-_STACK_DEPTH:]]


class LockGraph:
    """The global lock-order graph built from instrumented acquisitions."""

    def __init__(self) -> None:
        self._mu = _REAL_LOCK()
        self._tls = threading.local()
        #: ordering edges: (held site, acquired site) → first sample stack.
        self.edges: Dict[Tuple[str, str], List[str]] = {}
        #: blocking waits entered while holding another lock.
        self.wait_violations: List[Dict[str, object]] = []
        #: every instrumented site ever acquired.
        self.sites: set = set()

    # -- per-thread held stack ----------------------------------------- #

    def _held(self) -> List[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def note_acquired(self, site: str) -> None:
        """Record a successful acquisition of ``site`` by this thread."""
        held = self._held()
        with self._mu:
            self.sites.add(site)
            if site not in held:  # re-entrant holds add no ordering edge
                for holder in held:
                    key = (holder, site)
                    if key not in self.edges:
                        self.edges[key] = _short_stack()
        held.append(site)

    def note_released(self, site: str) -> None:
        """Record a release; pops the most recent hold of ``site``."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == site:
                del held[index]
                return

    def note_wait(self, site: str) -> None:
        """Record entry into ``Condition.wait`` on ``site``.

        Waiting releases the condition's own lock, so only the *other* held
        locks constitute a violation: they stay pinned for the whole wait.
        """
        others = [held for held in self._held() if held != site]
        if others:
            with self._mu:
                self.wait_violations.append({
                    "waiting_on": site,
                    "holding": list(others),
                    "stack": _short_stack(),
                })

    # -- analysis ------------------------------------------------------ #

    def cycles(self) -> List[List[str]]:
        """Every elementary ordering cycle, as site lists ``[a, b, ..., a]``.

        Two locks acquired in both orders produce the 2-cycle ``[a, b, a]``;
        longer chains surface as longer cycles.  The graphs involved are
        tiny (one node per lock creation site), so a DFS per node is plenty.
        """
        with self._mu:
            adjacency: Dict[str, List[str]] = {}
            for (src, dst) in self.edges:
                adjacency.setdefault(src, []).append(dst)
        cycles: List[List[str]] = []
        seen_keys: set = set()

        def dfs(start: str, node: str, path: List[str], visited: set) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt == start:
                    cycle = path + [start]
                    key = frozenset(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(cycle)
                elif nxt not in visited and nxt > start:
                    # only walk nodes ordered after start: each elementary
                    # cycle is then found exactly once, from its least node
                    visited.add(nxt)
                    dfs(start, nxt, path + [nxt], visited)
                    visited.discard(nxt)

        for start in sorted(adjacency):
            dfs(start, start, [start], {start})
        return cycles

    def report(self) -> Dict[str, object]:
        """Structured summary: sites, edges (with stacks), cycles, waits."""
        with self._mu:
            edges = {f"{src} -> {dst}": stack
                     for (src, dst), stack in self.edges.items()}
            waits = list(self.wait_violations)
            sites = sorted(self.sites)
        return {"sites": sites, "edges": edges, "cycles": self.cycles(),
                "wait_violations": waits}

    def assert_clean(self, *, allow_waits: bool = False) -> None:
        """Raise ``AssertionError`` with a readable report on any cycle (and,
        unless ``allow_waits``, on any blocking wait while holding a lock)."""
        problems: List[str] = []
        for cycle in self.cycles():
            chain = " -> ".join(cycle)
            problems.append(f"lock-order cycle (potential deadlock): {chain}")
            with self._mu:
                for src, dst in zip(cycle, cycle[1:], strict=False):
                    stack = self.edges.get((src, dst), [])
                    problems.append(f"  {src} -> {dst} first seen at:")
                    problems.extend(f"    {frame}" for frame in stack)
        if not allow_waits:
            for violation in self.wait_violations:
                holding = ", ".join(violation["holding"])  # type: ignore[arg-type]
                problems.append(
                    f"blocking wait on {violation['waiting_on']} while "
                    f"holding {holding}")
                problems.extend(f"    {frame}"
                                for frame in violation["stack"])  # type: ignore[union-attr]
        if problems:
            raise AssertionError("lock-order detector found problems:\n"
                                 + "\n".join(problems))


# --------------------------------------------------------------------- #
# instrumented primitives
# --------------------------------------------------------------------- #

class InstrumentedLock:
    """A ``threading.Lock`` that reports acquisitions to a :class:`LockGraph`."""

    _reentrant = False

    def __init__(self, graph: LockGraph, site: str,
                 inner: Optional[object] = None) -> None:
        self._graph = graph
        self._site = site
        self._inner = inner if inner is not None else self._make_inner()

    @staticmethod
    def _make_inner():
        return _REAL_LOCK()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock; record the ordering edge on success."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._graph.note_acquired(self._site)
        return acquired

    def release(self) -> None:
        """Release the underlying lock and pop it from the held stack."""
        self._inner.release()
        self._graph.note_released(self._site)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by any thread."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self._site}>"


class InstrumentedRLock(InstrumentedLock):
    """A ``threading.RLock`` variant; re-entrant holds add no order edges."""

    _reentrant = True

    @staticmethod
    def _make_inner():
        return _REAL_RLOCK()

    def locked(self) -> bool:
        """RLocks expose no portable ``locked``; report best-effort False."""
        locked = getattr(self._inner, "locked", None)
        return locked() if callable(locked) else False


class InstrumentedCondition:
    """A ``threading.Condition`` over an instrumented (or implicit) lock.

    ``wait``/``wait_for`` report to the graph: entering a wait releases the
    condition's own lock (popped from the held stack, re-pushed when the
    wait returns) and flags a wait-while-holding violation when any *other*
    instrumented lock stays held across the park.
    """

    def __init__(self, graph: LockGraph, site: str,
                 lock: Optional[object] = None) -> None:
        self._graph = graph
        if lock is None:
            lock = InstrumentedRLock(graph, site)
        if isinstance(lock, InstrumentedLock):
            self._site = lock._site
            inner = lock._inner
        else:  # a raw primitive: wrap without instrumentation details
            self._site = site
            inner = lock
        self._lock = lock
        self._cond = _REAL_CONDITION(inner)

    def acquire(self, *args, **kwargs) -> bool:
        """Acquire the condition's lock (instrumented when the lock is)."""
        return self._lock.acquire(*args, **kwargs)

    def release(self) -> None:
        """Release the condition's lock."""
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.__enter__()

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self._lock.__exit__(exc_type, exc_value, tb)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Instrumented ``Condition.wait``: release, park, re-acquire."""
        self._graph.note_wait(self._site)
        self._graph.note_released(self._site)
        try:
            return self._cond.wait(timeout)
        finally:
            self._graph.note_acquired(self._site)

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: Optional[float] = None) -> bool:
        """Instrumented ``Condition.wait_for`` (stdlib logic over our wait)."""
        endtime: Optional[float] = None
        waittime = timeout
        result = predicate()
        while not result:
            if waittime is not None:
                if endtime is None:
                    endtime = time.monotonic() + waittime
                else:
                    waittime = endtime - time.monotonic()
                    if waittime <= 0:
                        break
            self.wait(waittime)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiters."""
        self._cond.notify(n)

    def notify_all(self) -> None:
        """Wake every waiter."""
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<InstrumentedCondition {self._site}>"


# --------------------------------------------------------------------- #
# installation
# --------------------------------------------------------------------- #

def _creation_site(kind: str, frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{kind}@{module}:{frame.f_lineno}"


def install(graph: LockGraph,
            modules: Tuple[str, ...] = ("repro",)) -> Callable[[], None]:
    """Patch ``threading.Lock``/``RLock``/``Condition`` with instrumented
    factories feeding ``graph``; returns an ``uninstall()`` callable.

    Only creations from modules whose dotted name starts with one of the
    ``modules`` prefixes are instrumented — everything else (stdlib
    ``queue``, thread bookkeeping, third-party code) gets the real
    primitive, keeping the graph free of stdlib-internal edges.
    """

    def _instrument_here(frame) -> bool:
        name = frame.f_globals.get("__name__", "")
        return any(name == prefix or name.startswith(prefix + ".")
                   for prefix in modules)

    def make_lock():
        frame = sys._getframe(1)
        if not _instrument_here(frame):
            return _REAL_LOCK()
        return InstrumentedLock(graph, _creation_site("Lock", frame))

    def make_rlock():
        frame = sys._getframe(1)
        if not _instrument_here(frame):
            return _REAL_RLOCK()
        return InstrumentedRLock(graph, _creation_site("RLock", frame))

    def make_condition(lock=None):
        frame = sys._getframe(1)
        if not _instrument_here(frame) and not isinstance(lock, InstrumentedLock):
            return _REAL_CONDITION(lock)
        return InstrumentedCondition(graph,
                                     _creation_site("Condition", frame), lock)

    threading.Lock = make_lock
    threading.RLock = make_rlock
    threading.Condition = make_condition

    def uninstall() -> None:
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        threading.Condition = _REAL_CONDITION

    return uninstall
