"""Fixpoint propagation of whole-program properties over the call graph.

Three interprocedural rules run here, each a monotone dataflow problem over
the conservative graph built by :mod:`tools.analyze.callgraph`; all three
lattices are finite (sets of witnesses / exception names / reachable
classes), so the worklist iterations below always terminate — including on
recursive and mutually recursive call cycles, where the first-writer-wins
witness discipline doubles as the cycle guard.

* **CONC004 — transitive blocking.**  A function *may block* when its body
  contains a syntactic blocking primitive on an external receiver
  (``Queue.get``/``put``, zero-arg ``join``, ``sleep``, ``wait``/
  ``wait_for``, pipe/socket ``recv``/``select``/``accept``/``connect``) or
  when any direct callee may block.  Every lock-held call site whose callee
  may block is reported with the full chain down to the primitive.  Depth
  zero — the primitive lexically inside the ``with`` block — is CONC001's
  job and is not re-reported here.
* **ERR002 — exception contracts.**  Each function's escape set starts
  from its explicit ``raise`` statements plus modeled ``int()``/
  ``float()`` conversions on data-flow arguments, filtered through
  lexically enclosing ``try`` handlers, and grows along direct call edges
  (again handler-filtered per call site).  Entry points — public methods
  of the configured entry classes and public functions of the configured
  entry modules — fail when a builtin exception type can escape.
* **PICK001 — pickle safety.**  Starting from factory classes observed
  flowing into ``make_shard_worker``/``ProcessShardWorker`` boundaries
  (plus the payload classes their ``__call__`` returns), the attribute
  type graph is walked transitively; attributes holding locks, threads,
  queues, sockets, file handles, generators, lambdas, or nested defs are
  flagged, as are lambdas passed directly through a worker
  ``submit``/``call``.

Shared unsoundness (with :mod:`tools.analyze.callgraph`, documented in
``docs/ARCHITECTURE.md``): indirect worker-op edges are *excluded* from
CONC004/ERR002 propagation — submitted ops run on the worker thread and
workers convert exceptions into ``ShardResult`` — which also means the
synchronous ``InlineShardWorker`` path is not tracked; re-raised exception
variables and exceptions from unmodeled builtins are invisible to ERR002.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, CallSite, RaiseSite
from .rules import _BLOCKING_ATTRS, _BUILTIN_EXCEPTIONS, Finding

#: Rule id → one-line description for the interprocedural rules (parallel
#: to :data:`tools.analyze.rules.RULES`, which holds the per-file rules).
INTER_RULES = {
    "CONC004": "lock-held call chain reaches a blocking primitive",
    "ERR002": "builtin exception can escape a public entry point",
    "PICK001": "unpicklable state crosses a process/snapshot boundary",
}

#: Builtin exception hierarchy (child → parent) for handler matching.
_BUILTIN_PARENTS = {
    "ValueError": "Exception", "TypeError": "Exception",
    "KeyError": "LookupError", "IndexError": "LookupError",
    "LookupError": "Exception", "AttributeError": "Exception",
    "NameError": "Exception", "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError", "ArithmeticError": "Exception",
    "IOError": "OSError", "OSError": "Exception", "EOFError": "Exception",
    "MemoryError": "Exception", "RecursionError": "RuntimeError",
    "RuntimeError": "Exception", "SystemError": "Exception",
    "AssertionError": "Exception", "UnicodeError": "ValueError",
    "BufferError": "Exception", "ReferenceError": "Exception",
    "Exception": "BaseException",
}

#: External dotted-name prefixes whose instances do not pickle.
_UNPICKLABLE_PREFIXES = (
    "threading.", "_thread.", "queue.", "multiprocessing.", "socket.",
    "select.", "subprocess.", "weakref.", "mmap.", "sqlite3.", "io.",
)

_HAZARD_TEXT = {
    "lambda": "a lambda (closures do not pickle)",
    "nested-def": "a nested function (not importable, does not pickle)",
    "generator": "a generator (generators do not pickle)",
    "file-handle": "an open file handle (does not pickle)",
}


@dataclass(frozen=True)
class EntrySpec:
    """Which surfaces ERR002 holds to the errors contract.

    ``entry_classes`` are matched by bare class name anywhere in the
    package; ``entry_modules`` are module paths relative to the package
    root (``"sharding.snapshot"`` → ``repro.sharding.snapshot``).
    """

    entry_classes: Tuple[str, ...] = ("ShardedSummary", "ServingEngine")
    entry_modules: Tuple[str, ...] = ("sharding.snapshot",)


def _package_error_parents(graph: CallGraph) -> Dict[str, str]:
    """Child → parent short names for classes of ``<package>.errors``."""
    parents: Dict[str, str] = {}
    errors_module = f"{graph.package}.errors"
    for info in graph.classes.values():
        if info.module != errors_module:
            continue
        for base in info.bases:
            parents[info.name] = base.rsplit(".", 1)[-1]
        if info.name not in parents:
            parents[info.name] = "Exception"
    return parents


def _covers(exc: str, caught: FrozenSet[str], pkg_parents: Dict[str, str]) -> bool:
    """True when any caught type is ``exc`` or one of its ancestors."""
    seen: Set[str] = set()
    current: Optional[str] = exc
    while current is not None and current not in seen:
        if current in caught:
            return True
        seen.add(current)
        current = pkg_parents.get(current) or _BUILTIN_PARENTS.get(current)
    return False


def _filtered(exc: str, handlers: Iterable[FrozenSet[str]],
              pkg_parents: Dict[str, str]) -> bool:
    """True when an enclosing handler set catches ``exc``."""
    return any(_covers(exc, caught, pkg_parents) for caught in handlers)


# --------------------------------------------------------------------- #
# CONC004 — transitive blocking
# --------------------------------------------------------------------- #

def _blocking_witnesses(graph: CallGraph) -> Dict[str, tuple]:
    """Fixpoint: qname → witness.  A witness is ``("prim", desc, path,
    line)`` for a syntactic primitive or ``("call", callee, path, line)``
    pointing one step down the chain; first writer wins, which both keeps
    the shortest-discovered chain and terminates recursion."""
    witness: Dict[str, tuple] = {}
    for qname, sites in graph.blocks.items():
        first = min(sites, key=lambda s: s.lineno)
        fn = graph.functions.get(qname)
        path = fn.path if fn else ""
        witness[qname] = ("prim", first.desc, path, first.lineno)

    callers: Dict[str, List[CallSite]] = {}
    for site in graph.calls:
        if site.kind == "direct":
            callers.setdefault(site.callee, []).append(site)

    worklist = list(witness)
    while worklist:
        blocked = worklist.pop()
        for site in callers.get(blocked, ()):
            if site.caller not in witness:
                witness[site.caller] = ("call", blocked, site.path, site.lineno)
                worklist.append(site.caller)
    return witness


def _chain_text(graph: CallGraph, start: str,
                witness: Dict[str, tuple], limit: int = 12) -> str:
    parts: List[str] = []
    current: Optional[str] = start
    for _ in range(limit):
        if current is None or current not in witness:
            break
        entry = witness[current]
        fn = graph.functions.get(current)
        label = fn.short if fn else current
        if entry[0] == "prim":
            parts.append(f"{label} -> blocking '{entry[1]}' ({entry[2]}:{entry[3]})")
            break
        parts.append(f"{label} ({entry[2]}:{entry[3]})")
        current = entry[1]
    return " -> ".join(parts)


def check_transitive_blocking(graph: CallGraph) -> List[Finding]:
    """CONC004: lock-held call sites whose callee may (transitively) block."""
    witness = _blocking_witnesses(graph)
    findings: Dict[Tuple[str, int], Finding] = {}
    for site in graph.calls:
        if site.kind != "direct" or not site.held or site.callee not in witness:
            continue
        leaf = site.callee.rsplit(".", 1)[-1]
        if leaf in _BLOCKING_ATTRS:
            continue  # CONC001 already flags this site syntactically
        caller = graph.functions.get(site.caller)
        symbol = caller.short if caller else site.caller
        held = ", ".join(site.held)
        chain = _chain_text(graph, site.callee, witness)
        key = (site.path, site.lineno)
        if key in findings:
            continue
        findings[key] = Finding(
            "CONC004", site.path, site.lineno, symbol,
            f"call chain while holding {held} may block: {symbol} -> {chain}; "
            f"a parked thread keeps the lock held and starves every "
            f"contender")
    return list(findings.values())


# --------------------------------------------------------------------- #
# ERR002 — exception contracts
# --------------------------------------------------------------------- #

def _escape_sets(graph: CallGraph) -> Dict[str, Dict[str, tuple]]:
    """Fixpoint: qname → {builtin exception → witness}.

    Witnesses are ``("raise", path, line, desc)`` or ``("call", callee,
    path, line)``; only builtin types from the ERR001 flag set are
    tracked (``repro.errors`` types are the sanctioned contract and
    handler filtering of builtins never needs them).
    """
    pkg_parents = _package_error_parents(graph)
    escapes: Dict[str, Dict[str, tuple]] = {}
    for qname, sites in graph.raises.items():
        fn = graph.functions.get(qname)
        path = fn.path if fn else ""
        for site in sites:
            if site.exc not in _BUILTIN_EXCEPTIONS or site.exc in pkg_parents:
                continue
            if _filtered(site.exc, site.handlers, pkg_parents):
                continue
            escapes.setdefault(qname, {}).setdefault(
                site.exc, ("raise", path, site.lineno, site.desc))

    callers: Dict[str, List[CallSite]] = {}
    for site in graph.calls:
        if site.kind == "direct":
            callers.setdefault(site.callee, []).append(site)

    worklist = list(escapes)
    while worklist:
        callee = worklist.pop()
        for site in callers.get(callee, ()):
            changed = False
            for exc in escapes.get(callee, ()):
                if _filtered(exc, site.handlers, pkg_parents):
                    continue
                target = escapes.setdefault(site.caller, {})
                if exc not in target:
                    target[exc] = ("call", callee, site.path, site.lineno)
                    changed = True
            if changed:
                worklist.append(site.caller)
    return escapes


def _entry_points(graph: CallGraph, spec: EntrySpec) -> List[str]:
    entries: List[str] = []
    for info in graph.classes.values():
        if info.name in spec.entry_classes:
            for name, qname in info.methods.items():
                if not name.startswith("_"):
                    entries.append(qname)
    entry_modules = {f"{graph.package}.{m}" for m in spec.entry_modules}
    for qname, fn in graph.functions.items():
        if fn.module in entry_modules and fn.cls is None and \
                not fn.name.startswith("_") and \
                qname == f"{fn.module}.{fn.name}":
            entries.append(qname)
    return sorted(set(entries))


def _escape_chain(graph: CallGraph, qname: str, exc: str,
                  escapes: Dict[str, Dict[str, tuple]], limit: int = 12) -> str:
    parts: List[str] = []
    current: Optional[str] = qname
    for _ in range(limit):
        if current is None:
            break
        entry = escapes.get(current, {}).get(exc)
        if entry is None:
            break
        fn = graph.functions.get(current)
        label = fn.short if fn else current
        if entry[0] == "raise":
            parts.append(f"{label}: {entry[3]} at {entry[1]}:{entry[2]}")
            break
        parts.append(f"{label} ({entry[2]}:{entry[3]})")
        current = entry[1]
    return " -> ".join(parts)


def check_exception_contracts(graph: CallGraph,
                              spec: EntrySpec = EntrySpec()) -> List[Finding]:
    """ERR002: builtin exception types escaping public entry points."""
    escapes = _escape_sets(graph)
    findings: List[Finding] = []
    for qname in _entry_points(graph, spec):
        leaked = escapes.get(qname)
        if not leaked:
            continue
        fn = graph.functions[qname]
        chains = [f"{exc} via {_escape_chain(graph, qname, exc, escapes)}"
                  for exc in sorted(leaked)[:3]]
        more = len(leaked) - min(len(leaked), 3)
        suffix = f" (+{more} more type(s))" if more else ""
        findings.append(Finding(
            "ERR002", fn.path, fn.lineno, fn.short,
            f"public entry point can leak builtin exception(s) instead of "
            f"repro.errors types: " + "; ".join(chains) + suffix))
    return findings


# --------------------------------------------------------------------- #
# PICK001 — pickle safety across process/snapshot boundaries
# --------------------------------------------------------------------- #

def _boundary_roots(graph: CallGraph) -> Dict[str, str]:
    """Root class qname → human-readable provenance."""
    roots: Dict[str, str] = {}
    for factory in sorted(graph.boundary_factories):
        name = graph.classes[factory].name
        roots.setdefault(factory, f"factory {name} shipped to the worker")
        for payload in sorted(graph.classes[factory].call_returns):
            payload_name = graph.classes[payload].name
            roots.setdefault(
                payload, f"{payload_name} built by {name}.__call__ inside "
                f"the worker and pickled back through snapshot payloads")
    return roots


def check_pickle_safety(graph: CallGraph) -> List[Finding]:
    """PICK001: unpicklable state reachable from a process/snapshot root."""
    findings: Dict[Tuple[str, int, str], Finding] = {}
    roots = _boundary_roots(graph)
    visited: Set[str] = set()
    queue: List[Tuple[str, str, List[str]]] = [
        (root, why, [graph.classes[root].name]) for root, why in roots.items()]
    while queue:
        cls_qname, why, chain = queue.pop(0)
        if cls_qname in visited:
            continue
        visited.add(cls_qname)
        info = graph.classes[cls_qname]
        for attr in sorted(set(info.attr_types) | set(info.attr_hazards)):
            step = f"{info.name}.{attr}"
            path, lineno = info.attr_sites.get(attr, (info.path, info.lineno))
            via = " -> ".join(chain + [attr])
            for typ in sorted(info.attr_types.get(attr, ())):
                if typ in graph.classes:
                    queue.append((typ, why,
                                  chain + [f"{attr}:{graph.classes[typ].name}"]))
                elif typ.startswith(_UNPICKLABLE_PREFIXES):
                    findings.setdefault((path, lineno, step), Finding(
                        "PICK001", path, lineno, step,
                        f"'{step}' holds {typ}, which cannot cross the "
                        f"ProcessShardWorker/snapshot pickle boundary "
                        f"(reachable via {via}; {why})"))
            for hazard in sorted(info.attr_hazards.get(attr, ())):
                findings.setdefault((path, lineno, f"{step}#{hazard}"), Finding(
                    "PICK001", path, lineno, step,
                    f"'{step}' holds {_HAZARD_TEXT[hazard]} and cannot cross "
                    f"the ProcessShardWorker/snapshot pickle boundary "
                    f"(reachable via {via}; {why})"))
    for caller, path, lineno in graph.submit_lambdas:
        fn = graph.functions.get(caller)
        symbol = fn.short if fn else caller
        findings.setdefault((path, lineno, symbol), Finding(
            "PICK001", path, lineno, symbol,
            "lambda passed through a worker submit/call boundary; lambdas "
            "do not pickle, so this breaks under executor='process'"))
    return list(findings.values())


def run_interprocedural(graph: CallGraph,
                        spec: EntrySpec = EntrySpec()) -> List[Finding]:
    """Run all three interprocedural rules; findings sorted like the driver."""
    findings = (check_transitive_blocking(graph)
                + check_exception_contracts(graph, spec)
                + check_pickle_safety(graph))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
