"""AST implementations of the ``repro-lint`` rules.

Every rule works on a single file at a time from three inputs: the parsed
AST, the raw source lines, and the comment map (``tokenize``-extracted, so
comments inside strings never confuse the annotations).  Rules are pure —
they return :class:`Finding` lists and never mutate the tree — and each one
documents the exact heuristic it applies, because a project lint rule is
only trustworthy when its blind spots are written down.

Annotation conventions recognized here (see ``docs/ARCHITECTURE.md``):

* ``# guarded-by: <lock>`` on (or directly above) a ``self.<field> = ...``
  assignment in ``__init__`` declares the field's lock discipline.  The
  guard is either the name of a sibling lock attribute (``_lock``,
  ``self._state``) enforced via ``with`` blocks, or ``owner=<m1>,<m2>`` —
  a method-confinement form stating that only the listed methods (plus
  ``__init__``) may touch the field.
* ``# hot-path`` on (or directly above) a ``def`` line marks a function
  whose Python-level loops HOT001 inventories for vectorization.
* ``# repro-lint: ok RULE[,RULE...]`` on (or directly above) an offending
  line suppresses those rules for that line; appending a reason after the
  rule list is encouraged.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Attribute names treated as lock-like when they appear as the subject of a
#: ``with`` statement.  Matches ``_lock``, ``lock``, ``_state`` (the serving
#: engine's condition), ``mutex``, ``cond`` / ``condition``, and plural or
#: suffixed variants thereof.
_LOCKISH = re.compile(r"(^|_)(lock|mutex|state|cond|condition|sem|semaphore)s?\d*$")

#: Method names whose call blocks the calling thread (CONC001).  ``get`` is
#: only flagged in its queue shape (zero positional arguments, or a
#: ``block=``/``timeout=`` keyword) so dictionary ``.get(key)`` stays clean;
#: ``join`` is only flagged with zero positional arguments so string and
#: path joins stay clean (a positional-timeout ``thread.join(5)`` is the
#: documented blind spot).
_BLOCKING_ATTRS = {"get", "put", "join", "collect", "sleep", "wait", "wait_for"}

#: Builtin exception types ERR001 refuses in ``src/repro/**``.
#: ``NotImplementedError`` is deliberately absent (idiomatic for interface
#: stubs), as is ``StopIteration`` (generator protocol).
_BUILTIN_EXCEPTIONS = {
    "Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
    "KeyError", "IndexError", "LookupError", "AttributeError", "NameError",
    "ArithmeticError", "ZeroDivisionError", "OverflowError", "OSError",
    "IOError", "EOFError", "MemoryError", "RecursionError", "SystemError",
    "AssertionError", "UnicodeError", "BufferError", "ReferenceError",
}

#: Call names that count as "the handler did something" for EXC001.
_LOGGING_NAMES = {"log", "debug", "info", "warning", "warn", "error",
                  "exception", "critical", "print", "fail", "record"}

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([^\s#][^#]*?)\s*$")
_HOT_PATH = re.compile(r"#\s*hot-path\b(?::\s*bulk=(?P<bulk>[\w.]+))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def render(self) -> str:
        """Human-readable one-line report (``path:line: RULE [symbol] msg``)."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.rule}{where}: {self.message}"


def _expr_key(node: ast.AST) -> Optional[str]:
    """Dotted-name key of a simple expression (``self._lock``) or ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _annotation_for(node_line: int, comments: Dict[int, str],
                    lines: Sequence[str], pattern: re.Pattern) -> Optional[re.Match]:
    """Match ``pattern`` against the comment on ``node_line`` or the comment
    occupying the whole previous line."""
    comment = comments.get(node_line)
    if comment:
        match = pattern.search(comment)
        if match:
            return match
    previous = comments.get(node_line - 1)
    if previous and node_line - 2 < len(lines) and \
            lines[node_line - 2].lstrip().startswith("#"):
        return pattern.search(previous)
    return None


class _Context:
    """Shared per-file inputs every rule receives."""

    def __init__(self, tree: ast.AST, path: str, lines: Sequence[str],
                 comments: Dict[int, str]) -> None:
        self.tree = tree
        self.path = path
        self.lines = lines
        self.comments = comments


# --------------------------------------------------------------------- #
# CONC001 — blocking call while holding a lock
# --------------------------------------------------------------------- #

class _BlockingCallVisitor(ast.NodeVisitor):
    """Tracks the lexically held lock set and flags blocking calls under it.

    Waiting on the *held* condition itself is allowed — ``Condition.wait``
    releases the lock it guards, which is exactly the correct pattern — but
    every other blocking call keeps the lock held while parked, starving all
    other threads that need it.
    """

    def __init__(self, ctx: _Context, findings: List[Finding]) -> None:
        self._ctx = ctx
        self._findings = findings
        self._held: List[str] = []
        self._symbols: List[str] = []

    def _symbol(self) -> str:
        return ".".join(self._symbols)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def _visit_function(self, node) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            key = _expr_key(item.context_expr)
            if key and _LOCKISH.search(key.rsplit(".", 1)[-1]):
                self._held.append(key)
                pushed += 1
        for child in node.body:
            self.visit(child)
        if pushed:
            del self._held[-pushed:]

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        name: Optional[str] = None
        receiver: Optional[str] = None
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = _expr_key(func.value)
            if isinstance(func.value, ast.Constant):
                return  # "sep".join(...) and friends are not blocking
        elif isinstance(func, ast.Name):
            name = func.id
            if name != "sleep":
                return
        if name not in _BLOCKING_ATTRS:
            return
        if name in ("wait", "wait_for"):
            if receiver is not None and receiver in self._held:
                return  # waiting on the held condition releases it
        if name == "get":
            queue_shaped = not node.args or \
                any(kw.arg in ("block", "timeout") for kw in node.keywords)
            if not queue_shaped:
                return  # dict.get(key[, default]) is not blocking
        if name == "join" and node.args:
            return  # "sep".join(parts) / os.path.join(...) are not blocking
        held = ", ".join(self._held)
        self._findings.append(Finding(
            "CONC001", self._ctx.path, node.lineno, self._symbol(),
            f"blocking call '{name}' while holding {held}; blocking under a "
            f"lock starves every thread contending for it"))


def check_blocking_under_lock(ctx: _Context) -> List[Finding]:
    """CONC001: blocking calls inside a ``with <lock>:`` body."""
    findings: List[Finding] = []
    _BlockingCallVisitor(ctx, findings).visit(ctx.tree)
    return findings


# --------------------------------------------------------------------- #
# CONC002 — guarded-by discipline
# --------------------------------------------------------------------- #

def _collect_guards(cls: ast.ClassDef, ctx: _Context) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
    """Guarded fields of one class: ``{field: ("lock", (lockname,))}`` or
    ``{field: ("owner", (method, ...))}``, from ``# guarded-by:`` comments on
    ``self.<field> = ...`` assignments in ``__init__``."""
    guards: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    init = next((n for n in cls.body
                 if isinstance(n, ast.FunctionDef) and n.name == "__init__"), None)
    if init is None:
        return guards
    for stmt in ast.walk(init):
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        else:
            continue
        field_names = [t.attr for t in targets
                       if isinstance(t, ast.Attribute)
                       and isinstance(t.value, ast.Name) and t.value.id == "self"]
        if not field_names:
            continue
        match = _annotation_for(stmt.lineno, ctx.comments, ctx.lines, _GUARDED_BY)
        if match is None:
            continue
        spec = match.group(1).strip()
        if spec.startswith("owner="):
            owners = tuple(p.strip() for p in spec[len("owner="):].split(",")
                           if p.strip())
            guard: Tuple[str, Tuple[str, ...]] = ("owner", owners)
        else:
            lock = spec.split()[0]
            if lock.startswith("self."):
                lock = lock[len("self."):]
            guard = ("lock", (lock,))
        for field in field_names:
            guards[field] = guard
    return guards


class _GuardEnforcer(ast.NodeVisitor):
    """Checks every ``self.<guarded>`` access in one class against its guard."""

    def __init__(self, cls: ast.ClassDef,
                 guards: Dict[str, Tuple[str, Tuple[str, ...]]],
                 ctx: _Context, findings: List[Finding]) -> None:
        self._cls = cls
        self._guards = guards
        self._ctx = ctx
        self._findings = findings
        self._held: List[str] = []      # lock attribute names lexically held
        self._method: Optional[str] = None

    def run(self) -> None:
        for node in self._cls.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                    node.name != "__init__":
                self._method = node.name
                for child in node.body:
                    self.visit(child)
        self._method = None

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            key = _expr_key(item.context_expr)
            if key and key.startswith("self."):
                self._held.append(key[len("self."):])
                pushed += 1
        for child in node.body:
            self.visit(child)
        if pushed:
            del self._held[-pushed:]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def runs later, outside the lexical with-block; its
        # accesses are checked with an empty held set.
        held, self._held = self._held, []
        self.generic_visit(node)
        self._held = held

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            guard = self._guards.get(node.attr)
            if guard is not None:
                kind, names = guard
                if kind == "lock" and names[0] not in self._held:
                    self._findings.append(Finding(
                        "CONC002", self._ctx.path, node.lineno,
                        f"{self._cls.name}.{self._method}",
                        f"'self.{node.attr}' is guarded-by '{names[0]}' but "
                        f"accessed without 'with self.{names[0]}:'"))
                elif kind == "owner" and self._method not in names:
                    allowed = ", ".join(names)
                    self._findings.append(Finding(
                        "CONC002", self._ctx.path, node.lineno,
                        f"{self._cls.name}.{self._method}",
                        f"'self.{node.attr}' is confined to owner "
                        f"method(s) {allowed} but accessed from "
                        f"'{self._method}'"))
        self.generic_visit(node)


def check_guarded_by(ctx: _Context) -> List[Finding]:
    """CONC002: ``# guarded-by:`` annotated fields accessed undisciplined."""
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            guards = _collect_guards(node, ctx)
            if guards:
                _GuardEnforcer(node, guards, ctx, findings).run()
    return findings


# --------------------------------------------------------------------- #
# CONC003 — untracked threads
# --------------------------------------------------------------------- #

def _is_thread_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread"
    return False


def check_thread_lifecycle(ctx: _Context) -> List[Finding]:
    """CONC003: ``threading.Thread`` without ``daemon=`` or a tracked join.

    A thread with neither is a leak: a non-daemon thread with no ``join``
    keeps the interpreter alive on the failure path, and nothing ever
    observes its death.  Join tracking is per-file and name-based (locals,
    ``self.<attr>``, and one level of ``alias = self.<attr>`` aliasing).
    """
    joined: Set[str] = set()
    aliases: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            source = _expr_key(node.value)
            if source:
                aliases[node.targets[0].id] = source.removeprefix("self.")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "join":
            receiver = _expr_key(node.func.value)
            if receiver:
                receiver = receiver.removeprefix("self.")
                joined.add(receiver)
                if receiver in aliases:
                    joined.add(aliases[receiver])

    findings: List[Finding] = []
    assigned_calls: Set[int] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call) and _is_thread_call(value)):
            continue
        assigned_calls.add(id(value))
        has_daemon = any(kw.arg == "daemon" for kw in value.keywords)
        targets = [_expr_key(t) for t in node.targets]
        tracked = any(t and t.removeprefix("self.") in joined for t in targets)
        if not has_daemon and not tracked:
            findings.append(Finding(
                "CONC003", ctx.path, value.lineno, "",
                "threading.Thread created without daemon= and without a "
                "tracked join(); decide its lifecycle explicitly"))
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and _is_thread_call(node) and \
                id(node) not in assigned_calls:
            if not any(kw.arg == "daemon" for kw in node.keywords):
                findings.append(Finding(
                    "CONC003", ctx.path, node.lineno, "",
                    "threading.Thread created inline without daemon=; an "
                    "unassigned thread can never be joined"))
    return findings


# --------------------------------------------------------------------- #
# EXC001 — swallowed broad excepts
# --------------------------------------------------------------------- #

def _is_broad(expr: Optional[ast.AST]) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(e) for e in expr.elts)
    key = _expr_key(expr)
    return key in ("Exception", "BaseException") if key else False


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Name) and node.id == handler.name:
            return False  # the caught exception is used (recorded, attached)
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else \
                func.id if isinstance(func, ast.Name) else None
            if name in _LOGGING_NAMES:
                return False
    return True


def check_swallowed_except(ctx: _Context) -> List[Finding]:
    """EXC001: broad ``except`` that neither re-raises, logs, nor uses the
    exception — including ``contextlib.suppress(Exception)`` blocks."""
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node.type) and \
                _handler_swallows(node):
            findings.append(Finding(
                "EXC001", ctx.path, node.lineno, "",
                "broad except swallows the exception (no re-raise, no log, "
                "exception unused); narrow it or justify the suppression"))
        if isinstance(node, ast.Call) and \
                _expr_key(node.func) in ("contextlib.suppress", "suppress") and \
                any(_is_broad(arg) and _expr_key(arg) for arg in node.args):
            findings.append(Finding(
                "EXC001", ctx.path, node.lineno, "",
                "contextlib.suppress of a broad exception type; narrow it "
                "or justify the suppression"))
    return findings


# --------------------------------------------------------------------- #
# ERR001 — builtin raises inside the library
# --------------------------------------------------------------------- #

def check_builtin_raises(ctx: _Context) -> List[Finding]:
    """ERR001: ``raise <builtin>`` in ``src/repro/**`` instead of a
    :mod:`repro.errors` type.

    Library callers catch :class:`repro.errors.ReproError`; a bare builtin
    escapes that contract.  Only applies to files under the ``repro``
    package — tools, tests, and benchmarks may raise whatever fits.
    """
    parts = ctx.path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call):
            name = _expr_key(exc.func)
        elif isinstance(exc, (ast.Name, ast.Attribute)):
            name = _expr_key(exc)
        if name in _BUILTIN_EXCEPTIONS:
            findings.append(Finding(
                "ERR001", ctx.path, node.lineno, "",
                f"raises builtin {name}; raise a repro.errors type so "
                f"callers can catch ReproError uniformly"))
    return findings


# --------------------------------------------------------------------- #
# HOT001 — Python loops in hot-path functions
# --------------------------------------------------------------------- #

_LOOP_NODES = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
               ast.GeneratorExp)


#: Function-name suffixes that mark a call as a bulk (array-at-a-time)
#: kernel; calls to such names, or through the ``np``/``numpy`` modules,
#: make a hot-path function HOT001-compliant (see below).
_BULK_SUFFIXES = ("_array", "_arrays")


def _is_bulk_call(call: ast.Call) -> bool:
    """True when ``call`` invokes a bulk kernel.

    Either the called name ends in a :data:`_BULK_SUFFIXES` suffix
    (``probe_rows_array``, ``vectorized.hash64_array``, ...) or the
    attribute chain is rooted at ``np`` / ``numpy`` (``np.unique``,
    ``numpy.concatenate``, ...).
    """
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in ("np", "numpy"):
            return True
    return name is not None and name.endswith(_BULK_SUFFIXES)


def check_hot_path_loops(ctx: _Context) -> List[Finding]:
    """HOT001: per-item Python loops inside ``# hot-path`` functions.

    This produces the machine-checked inventory of loops the ROADMAP's
    vectorization item must replace with bulk array operations; each one is
    expected to live in the committed baseline with that justification until
    it is vectorized.

    Two shapes of hot-path function are **compliant** (their loops are not
    findings):

    * ``# hot-path: bulk=<name>`` — the function is the retained scalar
      twin of the named bulk kernel (numpy is optional, so the scalar loop
      must exist).  A bare ``<name>`` must be defined in the same file —
      a dangling twin reference is itself a finding — while a dotted name
      (``vectorized.lift_array``) is accepted as-is, since the reference
      crosses a module boundary the per-file pass cannot resolve.
    * A plain ``# hot-path`` function that *makes bulk calls* (a call to a
      ``*_array``/``*_arrays`` kernel or through ``np``/``numpy``): its
      remaining Python loops are orchestration around vectorized work, not
      per-item math — exactly the end state the inventory drives toward.
    """
    defined_names = {
        node.name for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        match = _annotation_for(node.lineno, ctx.comments, ctx.lines,
                                _HOT_PATH)
        if match is None:
            continue
        bulk = match.group("bulk")
        if bulk is not None:
            if "." not in bulk and bulk not in defined_names:
                findings.append(Finding(
                    "HOT001", ctx.path, node.lineno, node.name,
                    f"hot-path function '{node.name}' names bulk twin "
                    f"'{bulk}' which is not defined in this file"))
            continue
        if any(isinstance(sub, ast.Call) and _is_bulk_call(sub)
               for sub in ast.walk(node)):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, _LOOP_NODES):
                kind = type(sub).__name__
                findings.append(Finding(
                    "HOT001", ctx.path, sub.lineno, node.name,
                    f"Python-level loop ({kind}) in hot-path function "
                    f"'{node.name}'; vectorization candidate"))
    return findings


#: Rule registry: rule id → (checker, one-line description).
RULES = {
    "CONC001": (check_blocking_under_lock,
                "blocking call while holding a lock"),
    "CONC002": (check_guarded_by,
                "guarded-by field accessed outside its lock/owner"),
    "CONC003": (check_thread_lifecycle,
                "thread without daemon= or tracked join"),
    "EXC001": (check_swallowed_except,
               "swallowed broad except"),
    "ERR001": (check_builtin_raises,
               "builtin exception raised inside src/repro"),
    "HOT001": (check_hot_path_loops,
               "Python loop in a hot-path function"),
}
