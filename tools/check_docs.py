#!/usr/bin/env python
"""Documentation checks: public-API docstrings and README code snippets.

Two checks, both dependency-free so they run identically in CI and locally:

* :func:`find_missing_docstrings` walks the AST of the public-interface
  modules (``src/repro/summary.py`` and everything under
  ``src/repro/sharding/`` and ``src/repro/serving/``) and reports every
  module, public class, and public function/method without a docstring.
* :func:`run_readme_snippets` extracts every fenced ``python`` code block
  from ``README.md`` and executes it in a fresh namespace (with ``src`` on
  ``sys.path``), so the quickstart the README promises actually runs as-is.

Run from the repository root::

    python tools/check_docs.py

Exit status is non-zero when any check fails.  The tier-1 test
``tests/test_docs.py`` wraps the same functions, so a docs regression fails
the normal test suite too.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files and directories whose public API must be fully documented.
DOCUMENTED_PATHS = (
    REPO_ROOT / "src" / "repro" / "summary.py",
    REPO_ROOT / "src" / "repro" / "sharding",
    REPO_ROOT / "src" / "repro" / "serving",
    REPO_ROOT / "src" / "repro" / "observability",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def find_missing_docstrings(paths=DOCUMENTED_PATHS) -> List[str]:
    """Return ``"file:line: description"`` entries for undocumented API.

    Checks module docstrings, public class docstrings, and docstrings of
    public functions and methods (names not starting with ``_``; ``__init__``
    is exempt because constructor parameters are documented in the class
    docstring, following the package's NumPy-style convention).
    """
    problems: List[str] = []
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for file in files:
        rel = file.relative_to(REPO_ROOT)
        tree = ast.parse(file.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            problems.append(f"{rel}:1: module has no docstring")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and _is_public(node.name):
                if ast.get_docstring(node) is None:
                    problems.append(
                        f"{rel}:{node.lineno}: class {node.name} has no docstring")
                for item in node.body:
                    if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and _is_public(item.name)
                            and ast.get_docstring(item) is None):
                        problems.append(
                            f"{rel}:{item.lineno}: method "
                            f"{node.name}.{item.name} has no docstring")
        for node in tree.body:
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_public(node.name)
                    and ast.get_docstring(node) is None):
                problems.append(
                    f"{rel}:{node.lineno}: function {node.name} has no docstring")
    return problems


def extract_python_snippets(readme: Path = REPO_ROOT / "README.md"
                            ) -> List[Tuple[int, str]]:
    """Return ``(line_number, code)`` for every fenced python block."""
    text = readme.read_text(encoding="utf-8")
    snippets: List[Tuple[int, str]] = []
    for match in re.finditer(r"```python\n(.*?)```", text, flags=re.DOTALL):
        line = text[:match.start()].count("\n") + 2
        snippets.append((line, match.group(1)))
    return snippets


def run_readme_snippets(readme: Path = REPO_ROOT / "README.md") -> List[str]:
    """Execute every README python snippet; return failure descriptions."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    # Snippets may also demo the in-repo tooling (``tools.analyze``).
    root = str(REPO_ROOT)
    if root not in sys.path:
        sys.path.insert(1, root)
    failures: List[str] = []
    snippets = extract_python_snippets(readme)
    if not snippets:
        return [f"{readme.name}: no fenced python snippets found"]
    for line, code in snippets:
        try:
            exec(compile(code, f"{readme.name}:{line}", "exec"), {})
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            failures.append(f"{readme.name}:{line}: snippet failed: "
                            f"{type(exc).__name__}: {exc}")
    return failures


def main() -> int:
    """Run both checks and report; returns a process exit code."""
    problems = find_missing_docstrings()
    for problem in problems:
        print(f"docstring: {problem}")
    failures = run_readme_snippets()
    for failure in failures:
        print(f"snippet: {failure}")
    if problems or failures:
        print(f"FAILED: {len(problems)} docstring problem(s), "
              f"{len(failures)} snippet failure(s)")
        return 1
    print("docs checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
