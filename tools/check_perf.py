#!/usr/bin/env python
"""Performance-regression gate: re-measure the smoke benchmarks, compare.

The repository's performance wins are ratios — the batch ingest path is
≥2× the per-item path (PR 1), and the 4-shard engine projects well over 1×
the single-shard ingest throughput (PR 2).  This tool re-runs the ``batch``
and ``sharded`` smoke benchmarks at a small fixed scale, extracts those
ratio metrics, and fails when any of them regressed more than the committed
tolerance below its baseline (``benchmarks/baselines.json``).

Only **ratio** metrics are gated.  Absolute throughputs (also measured and
written to the report for the CI artifact) vary several-fold across runner
hardware, so gating them would make the job flaky on fast runners and
useless on slow ones; the ratios cancel the hardware out while still
catching the regressions that matter (a broken batch fast path collapses
the speedup to ~1× no matter the machine).

Usage::

    PYTHONPATH=src python tools/check_perf.py                 # gate
    PYTHONPATH=src python tools/check_perf.py --update        # refresh baselines
    PYTHONPATH=src python tools/check_perf.py --inject-slowdown 0.01
                                                              # prove the gate trips

``--inject-slowdown S`` monkeypatches a ``sleep(S)`` into every
``Higgs.insert_batch`` call before measuring — a real slowdown of the guarded
fast path, used to verify locally (and in code review) that the gate actually
fails when performance regresses.

Exit status: 0 when every gated metric is within tolerance, 1 on regression,
2 on a malformed baselines file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines.json"
DEFAULT_REPORT = REPO_ROOT / "results" / "perf_check.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def inject_slowdown(seconds_per_batch: float) -> None:
    """Slow every ``Higgs.insert_batch`` call by ``seconds_per_batch``.

    A deliberate, real regression of the guarded fast path (not a doctored
    comparison), so ``--inject-slowdown`` demonstrates end-to-end that the
    gate fails when the code gets slower.
    """
    from repro.core.higgs import Higgs
    original = Higgs.insert_batch

    def slowed(self, edges):
        time.sleep(seconds_per_batch)
        return original(self, edges)

    Higgs.insert_batch = slowed


def run_measurements(scale: float) -> Dict[str, float]:
    """Run the smoke benchmarks; return every metric (gated and informational).

    Gated ratio metrics:

    * ``batch_higgs_speedup_x`` — HIGGS ``insert_batch`` vs per-item
      ``insert`` throughput ratio (the PR 1 win).
    * ``sharded_parallel_x4`` — projected-parallel ingest speedup of the
      4-shard engine over 1 shard (the PR 2 win).
    * ``rebalance_recovery_x`` — slowest-shard load ratio of the skewed
      phase over the rebalanced phase of the elastic-rebalancing
      experiment, i.e. the projected throughput recovered by live key
      reassignment (the PR 7 win).  Computed from deterministic item
      counters, so it cannot flake on timing noise; a broken
      ``rebalance()`` path collapses it to ~1×.

    Informational absolute metrics (reported, not gated):
    ``batch_higgs_eps``, ``batch_higgs_per_item_eps``,
    ``sharded_wall_eps_1``, ``rebalance_measured_x``,
    ``rebalance_recover_s``.
    """
    from repro.bench.experiments import (run_batch_speedup, run_rebalance,
                                         run_sharded_scaling)

    batch_rows = run_batch_speedup(methods=("HIGGS",), scale=scale)
    higgs = next(row for row in batch_rows if row["method"] == "HIGGS")

    sharded_rows = run_sharded_scaling(scale=scale, shard_counts=(1, 4),
                                       hot_fractions=())
    by_shards = {row["shards"]: row for row in sharded_rows
                 if row["figure"] == "sharded"}

    rebalance_rows = run_rebalance(scale=scale)
    rebalanced = next(row for row in rebalance_rows
                      if row["phase"] == "rebalanced")
    recovery = next(row for row in rebalance_rows
                    if row["figure"] == "rebalance-recovery")
    return {
        "batch_higgs_speedup_x": float(higgs["speedup"]),
        "batch_higgs_eps": float(higgs["batch_eps"]),
        "batch_higgs_per_item_eps": float(higgs["per_item_eps"]),
        "sharded_parallel_x4": float(by_shards[4]["parallel_x"]),
        "sharded_wall_eps_1": float(by_shards[1]["wall_eps"]),
        "rebalance_recovery_x": float(rebalanced["recovery_x"]),
        "rebalance_measured_x": float(rebalanced["measured_x"]),
        "rebalance_recover_s": float(recovery["recover_s"]),
    }


def compare(measured: Dict[str, float], baselines: Dict[str, dict],
            tolerance: float) -> List[Dict[str, object]]:
    """Compare measured metrics against baselines; return one row per metric.

    Every baselined metric is "higher is better"; a metric regresses when
    ``measured < baseline * (1 - tolerance)``.  Metrics present in the
    measurement but absent from the baselines (the informational ones) are
    reported with ``gated = False`` and never fail.
    """
    rows: List[Dict[str, object]] = []
    for name, value in sorted(measured.items()):
        entry = baselines.get(name)
        if entry is None:
            rows.append({"metric": name, "measured": value, "baseline": None,
                         "floor": None, "gated": False, "ok": True})
            continue
        baseline = float(entry["value"])
        floor = baseline * (1.0 - tolerance)
        rows.append({"metric": name, "measured": value, "baseline": baseline,
                     "floor": floor, "gated": True, "ok": value >= floor})
    missing = sorted(set(baselines) - set(measured))
    for name in missing:
        rows.append({"metric": name, "measured": None,
                     "baseline": float(baselines[name]["value"]),
                     "floor": None, "gated": True, "ok": False})
    return rows


def main(argv: List[str] | None = None) -> int:
    """Run the gate; see the module docstring for semantics and exit codes."""
    parser = argparse.ArgumentParser(
        description="Fail when the smoke benchmarks regressed past tolerance.")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES,
                        help="committed baselines file")
    parser.add_argument("--output", type=Path, default=DEFAULT_REPORT,
                        help="where to write the fresh numbers (CI artifact)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the baselines file's benchmark scale")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baselines file's relative tolerance")
    parser.add_argument("--update", action="store_true",
                        help="write measured values back as the new baselines")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        metavar="SECONDS",
                        help="slow every Higgs.insert_batch by SECONDS first "
                             "(verifies the gate trips)")
    args = parser.parse_args(argv)

    try:
        spec = json.loads(args.baselines.read_text(encoding="utf-8"))
        gated: Dict[str, dict] = spec["metrics"]
        scale = float(args.scale if args.scale is not None else spec["scale"])
        tolerance = float(args.tolerance if args.tolerance is not None
                          else spec["tolerance"])
    except FileNotFoundError:
        if not args.update:
            print(f"error: baselines file {args.baselines} not found "
                  f"(run with --update to create it)", file=sys.stderr)
            return 2
        gated = {}
        scale = 0.1 if args.scale is None else args.scale
        tolerance = 0.30 if args.tolerance is None else args.tolerance
    except (KeyError, ValueError, TypeError) as exc:
        print(f"error: malformed baselines file {args.baselines}: {exc!r}",
              file=sys.stderr)
        return 2

    if args.inject_slowdown > 0:
        inject_slowdown(args.inject_slowdown)
        print(f"injected {args.inject_slowdown * 1e3:.1f} ms slowdown per "
              f"Higgs.insert_batch call")

    print(f"measuring smoke benchmarks at scale {scale} "
          f"(tolerance {tolerance:.0%}) ...")
    measured = run_measurements(scale)

    if args.update:
        gated_names = ("batch_higgs_speedup_x", "sharded_parallel_x4",
                       "rebalance_recovery_x")
        spec = {
            "scale": scale,
            "tolerance": tolerance,
            "metrics": {name: {"value": round(measured[name], 4)}
                        for name in gated_names},
        }
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        args.baselines.write_text(json.dumps(spec, indent=2) + "\n",
                                  encoding="utf-8")
        print(f"baselines updated: {args.baselines}")
        # Gate against what was just written — an accepted baseline refresh
        # must exit 0, not fail against the superseded values.
        gated = spec["metrics"]

    rows = compare(measured, gated, tolerance)
    width = max(len(str(row["metric"])) for row in rows)
    for row in rows:
        flag = "  " if row["ok"] else "✗ "
        kind = "gated" if row["gated"] else "info "
        baseline = (f"baseline {row['baseline']:.3f} "
                    f"floor {row['floor']:.3f}" if row["floor"] is not None
                    else "")
        value = ("missing" if row["measured"] is None
                 else f"{row['measured']:.3f}")
        print(f"{flag}[{kind}] {str(row['metric']).ljust(width)} "
              f"measured {value}  {baseline}")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps({
        "scale": scale, "tolerance": tolerance, "rows": rows,
    }, indent=2) + "\n", encoding="utf-8")
    print(f"report written: {args.output}")

    failures = [row for row in rows if row["gated"] and not row["ok"]]
    if failures:
        print(f"FAILED: {len(failures)} metric(s) regressed past "
              f"{tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
