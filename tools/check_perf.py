#!/usr/bin/env python
"""Performance-regression gate: re-measure the smoke benchmarks, compare.

The repository's performance wins are ratios — the batch ingest path is
≥2× the per-item path (PR 1), the 4-shard engine projects well over 1×
the single-shard ingest throughput (PR 2), and live rebalancing recovers
~3× of a hot shard's projected throughput (PR 7).  Since the observability
layer landed, **latency behavior is gated too**: the serving engine's read
p99/p50 inflation at the 8-client 0.9-read-ratio row and the shed fraction
under the fixed open-loop overload row, both sourced from the engine's
metric snapshots.  This tool re-runs the smoke benchmarks at a small fixed
scale, extracts those ratio metrics, and fails when any of them regressed
more than its tolerance past its committed baseline
(``benchmarks/baselines.json``).

Only **ratio** metrics are gated.  Absolute throughputs (also measured and
written to the report for the CI artifact) vary several-fold across runner
hardware, so gating them would make the job flaky on fast runners and
useless on slow ones; the ratios cancel the hardware out while still
catching the regressions that matter (a broken batch fast path collapses
the speedup to ~1× no matter the machine; a read path that grew a tail
inflates p99 over p50 on any hardware).  Throughput-style metrics are
"higher is better"; the serving latency/shedding ratios declare
``"direction": "lower"`` in the baselines file (and a wider per-metric
``"tolerance"``, since queue dynamics are noisier than batch speedups).

Usage::

    PYTHONPATH=src python tools/check_perf.py                 # gate
    PYTHONPATH=src python tools/check_perf.py --update        # refresh baselines
    PYTHONPATH=src python tools/check_perf.py --summary       # + markdown table
                                     # (to $GITHUB_STEP_SUMMARY when set)
    PYTHONPATH=src python tools/check_perf.py --inject-slowdown 0.01
                                                              # prove the gate trips
    PYTHONPATH=src python tools/check_perf.py --inject-read-tail 0.05
                                                              # prove p99/p50 trips
    PYTHONPATH=src python tools/check_perf.py --inject-admission-squeeze
                                                              # prove shedding trips

The injection flags plant a *real* regression before measuring, verifying
end-to-end that the gate fails when the guarded behavior degrades:
``--inject-slowdown S`` sleeps in every ``Higgs.insert_batch`` (collapses
the batch speedup), ``--inject-read-tail S`` sleeps in every 20th
``Higgs.query_batch`` (a tail-only read regression — p50 holds, p99
inflates, exactly the failure uniform slowdowns cannot expose because the
overload row re-calibrates its offered rate from the same run's measured
capacity), and ``--inject-admission-squeeze`` shrinks the drop-policy
admission queue 32× (excess shedding under the same offered load).

Exit status: 0 when every gated metric is within tolerance, 1 on regression,
2 on a malformed baselines file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines.json"
DEFAULT_REPORT = REPO_ROOT / "results" / "perf_check.json"

#: The gated metrics and the baseline attributes ``--update`` writes for
#: each.  The throughput ratios are "higher is better" under the file-wide
#: tolerance; the serving latency/shedding ratios declare
#: ``direction: lower`` plus a wider per-metric tolerance, because queue
#: dynamics on a busy runner are noisier than deterministic batch math but
#: a real regression (tail growth, shrunken admission) overshoots far past
#: even the wide band (see the ``--inject-*`` flags).
GATED_METRICS: Dict[str, dict] = {
    "batch_higgs_speedup_x": {},
    "sharded_parallel_x4": {},
    "sharded_wall_x4": {"min_cores": 4},
    "rebalance_recovery_x": {},
    "serving_read_p99_p50_x": {"direction": "lower", "tolerance": 1.0},
    "serving_shed_fraction": {"direction": "lower", "tolerance": 0.35},
}

sys.path.insert(0, str(REPO_ROOT / "src"))


def inject_slowdown(seconds_per_batch: float) -> None:
    """Slow every ``Higgs.insert_batch`` call by ``seconds_per_batch``.

    A deliberate, real regression of the guarded fast path (not a doctored
    comparison), so ``--inject-slowdown`` demonstrates end-to-end that the
    gate fails when the code gets slower.
    """
    from repro.core.higgs import Higgs
    original = Higgs.insert_batch

    def slowed(self, edges):
        time.sleep(seconds_per_batch)
        return original(self, edges)

    Higgs.insert_batch = slowed


#: Every Nth ``Higgs.query_batch`` call is slowed by ``--inject-read-tail``
#: — rare enough to leave p50 alone, frequent enough to own p99.
READ_TAIL_EVERY = 20


def inject_read_tail(seconds_per_batch: float) -> None:
    """Slow every :data:`READ_TAIL_EVERY`-th ``Higgs.query_batch`` call.

    A tail-only read regression: most read rounds stay fast (p50 holds)
    while the slowed ones inflate p99, so the gated ``serving_read_p99_p50_x``
    ratio moves.  A *uniform* read slowdown would shift p50 and p99
    together and leave the ratio flat — which is why the latency gate needs
    this tail-shaped injection to prove it trips.
    """
    from repro.core.higgs import Higgs
    original = Higgs.query_batch
    calls = [0]

    def tailed(self, queries):
        calls[0] += 1
        if calls[0] % READ_TAIL_EVERY == 0:
            time.sleep(seconds_per_batch)
        return original(self, queries)

    Higgs.query_batch = tailed


def inject_admission_squeeze(divisor: int = 32) -> None:
    """Shrink every drop-policy serving engine's admission queue ``divisor``×.

    The overload row offers ~3× the same run's measured closed-loop rate,
    so uniform slowdowns self-normalize out of the shed fraction; what the
    ``serving_shed_fraction`` gate actually guards is the admission
    capacity/policy itself.  Squeezing ``max_pending`` is that regression:
    the same offered load now sheds far more.  Blocking-policy engines
    (the closed-loop rows) are left untouched.
    """
    import dataclasses

    from repro.serving.engine import ServingEngine
    original = ServingEngine.__init__

    def squeezed(self, summary, config=None, **kwargs):
        if config is not None and config.admission == "drop":
            config = dataclasses.replace(
                config, max_pending=max(1, config.max_pending // divisor))
        original(self, summary, config, **kwargs)

    ServingEngine.__init__ = squeezed


def run_measurements(scale: float) -> Dict[str, float]:
    """Run the smoke benchmarks; return every metric (gated and informational).

    Gated ratio metrics:

    * ``batch_higgs_speedup_x`` — HIGGS ``insert_batch`` vs per-item
      ``insert`` throughput ratio (the PR 1 win).
    * ``sharded_parallel_x4`` — projected-parallel ingest speedup of the
      4-shard engine over 1 shard (the PR 2 win).
    * ``sharded_wall_x4`` — **measured** wall-clock ingest speedup of the
      4-shard ``"process"`` engine over 1 shard, through the packed-edge
      shared-memory transport.  Declares ``min_cores: 4``: it is always
      measured and recorded, but only enforced on hosts with at least four
      cores — a single-core runner cannot realize parallel speedup, so the
      gate reports it as ``skipped: N cores`` there instead of failing.
    * ``rebalance_recovery_x`` — slowest-shard load ratio of the skewed
      phase over the rebalanced phase of the elastic-rebalancing
      experiment, i.e. the projected throughput recovered by live key
      reassignment (the PR 7 win).  Computed from deterministic item
      counters, so it cannot flake on timing noise; a broken
      ``rebalance()`` path collapses it to ~1×.

    * ``serving_read_p99_p50_x`` — read p99/p50 latency inflation of the
      8-client 0.9-read-ratio closed-loop serving row, from the engine's
      latency histogram (the PR 8 latency contract).  Direction **lower**:
      a read path that grew a tail fails it on any hardware.
    * ``serving_shed_fraction`` — requests shed at admission under the
      open-loop overload row (offered ≈ 3× the same run's measured
      capacity, small drop-policy queue).  Direction **lower**: guards the
      admission capacity and drop policy.

    Informational absolute metrics (reported, not gated):
    ``batch_higgs_eps``, ``batch_higgs_per_item_eps``,
    ``sharded_wall_eps_1``, ``rebalance_measured_x``,
    ``rebalance_recover_s``, ``serving_req_per_s``, ``serving_read_p99_ms``,
    ``serving_burst_fixed_p99_ms``, ``serving_burst_adaptive_p99_ms``.
    """
    from repro.bench.experiments import (run_batch_speedup, run_rebalance,
                                         run_serving, run_sharded_scaling)

    batch_rows = run_batch_speedup(methods=("HIGGS",), scale=scale)
    higgs = next(row for row in batch_rows if row["method"] == "HIGGS")

    sharded_rows = run_sharded_scaling(scale=scale, shard_counts=(1, 4),
                                       hot_fractions=())
    by_shards = {row["shards"]: row for row in sharded_rows
                 if row["figure"] == "sharded"}
    process_by_shards = {row["shards"]: row for row in sharded_rows
                         if row["figure"] == "sharded-process"}

    rebalance_rows = run_rebalance(scale=scale)
    rebalanced = next(row for row in rebalance_rows
                      if row["phase"] == "rebalanced")
    recovery = next(row for row in rebalance_rows
                    if row["figure"] == "rebalance-recovery")

    serving_rows = run_serving(scale=scale, read_ratios=(0.9,),
                               client_counts=(8,))
    closed = next(row for row in serving_rows if row["figure"] == "serving")
    overload = next(row for row in serving_rows
                    if row["figure"] == "serving-open")
    burst = {row["policy"].split("-")[0]: row for row in serving_rows
             if row["figure"] == "serving-burst"}
    offered = float(overload["requests"]) + float(overload["dropped"])
    return {
        "batch_higgs_speedup_x": float(higgs["speedup"]),
        "batch_higgs_eps": float(higgs["batch_eps"]),
        "batch_higgs_per_item_eps": float(higgs["per_item_eps"]),
        "sharded_parallel_x4": float(by_shards[4]["parallel_x"]),
        "sharded_wall_x4": float(process_by_shards[4]["wall_x"]),
        "sharded_wall_eps_1": float(by_shards[1]["wall_eps"]),
        "host_cores": float(process_by_shards[4]["host_cores"]),
        "rebalance_recovery_x": float(rebalanced["recovery_x"]),
        "rebalance_measured_x": float(rebalanced["measured_x"]),
        "rebalance_recover_s": float(recovery["recover_s"]),
        "serving_read_p99_p50_x": (float(closed["read_p99_ms"]) /
                                   max(1e-9, float(closed["read_p50_ms"]))),
        "serving_shed_fraction": float(overload["dropped"]) / max(1.0, offered),
        "serving_req_per_s": float(closed["req_per_s"]),
        "serving_read_p99_ms": float(closed["read_p99_ms"]),
        "serving_burst_fixed_p99_ms": float(burst["fixed"]["p99_ms"]),
        "serving_burst_adaptive_p99_ms": float(burst["adaptive"]["p99_ms"]),
    }


def compare(measured: Dict[str, float], baselines: Dict[str, dict],
            tolerance: float) -> List[Dict[str, object]]:
    """Compare measured metrics against baselines; return one row per metric.

    A baselined metric defaults to "higher is better" with the file-wide
    ``tolerance``: it regresses when ``measured < baseline * (1 - tol)``.
    An entry may declare ``"direction": "lower"`` (regresses when
    ``measured > baseline * (1 + tol)`` — latency inflation, shed fraction)
    and/or a per-metric ``"tolerance"`` overriding the file-wide one.  Each
    row's ``limit`` is the pass/fail boundary in the metric's own direction.
    Metrics present in the measurement but absent from the baselines (the
    informational ones) are reported with ``gated = False`` and never fail.

    An entry may declare ``"min_cores": N``: on a host with fewer than N
    cores the metric is still measured and reported, but the verdict is
    recorded as skipped (``skipped = "skipped: C cores"``) rather than
    enforced — a hardware precondition, not a regression.
    """
    host_cores = os.cpu_count() or 1
    rows: List[Dict[str, object]] = []
    for name, value in sorted(measured.items()):
        entry = baselines.get(name)
        if entry is None:
            rows.append({"metric": name, "measured": value, "baseline": None,
                         "limit": None, "direction": None, "gated": False,
                         "ok": True, "skipped": None})
            continue
        baseline = float(entry["value"])
        direction = str(entry.get("direction", "higher"))
        if direction not in ("higher", "lower"):
            raise ValueError(f"metric {name!r}: unknown direction "
                             f"{direction!r} (want 'higher' or 'lower')")
        tol = float(entry.get("tolerance", tolerance))
        if direction == "lower":
            limit = baseline * (1.0 + tol)
            ok = value <= limit
        else:
            limit = baseline * (1.0 - tol)
            ok = value >= limit
        skipped = None
        min_cores = int(entry.get("min_cores", 0))
        if min_cores and host_cores < min_cores:
            skipped = f"skipped: {host_cores} cores"
            ok = True
        rows.append({"metric": name, "measured": value, "baseline": baseline,
                     "limit": limit, "direction": direction, "gated": True,
                     "ok": ok, "skipped": skipped})
    missing = sorted(set(baselines) - set(measured))
    for name in missing:
        rows.append({"metric": name, "measured": None,
                     "baseline": float(baselines[name]["value"]),
                     "limit": None,
                     "direction": str(baselines[name].get("direction",
                                                          "higher")),
                     "gated": True, "ok": False, "skipped": None})
    return rows


def render_markdown(rows: List[Dict[str, object]], scale: float,
                    tolerance: float) -> str:
    """Render the comparison as a GitHub-flavored markdown table.

    One row per metric: measured value, baseline, signed % delta from the
    baseline, and the verdict (``pass`` / ``FAIL`` / ``skipped: N cores``
    for under-provisioned ``min_cores`` metrics / ``info`` for ungated
    ones).  Written to ``$GITHUB_STEP_SUMMARY`` by the CI jobs so the
    numbers are readable from the run page without downloading artifacts.
    """
    lines = [
        f"### Perf gate (scale {scale:g}, tolerance {tolerance:.0%})",
        "",
        "| metric | measured | baseline | delta | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        name = str(row["metric"])
        measured = ("—" if row["measured"] is None
                    else f"{float(row['measured']):.3f}")
        if row["baseline"] is None:
            baseline = delta = "—"
        else:
            baseline = f"{float(row['baseline']):.3f}"
            if row["measured"] is None:
                delta = "—"
            else:
                change = (float(row["measured"]) / float(row["baseline"])
                          - 1.0) if float(row["baseline"]) else 0.0
                delta = f"{change:+.1%}"
        if not row["gated"]:
            verdict = "info"
        elif row.get("skipped"):
            verdict = f"⏭️ {row['skipped']}"
        elif row["ok"]:
            verdict = "✅ pass"
        else:
            verdict = "❌ FAIL"
        lines.append(f"| `{name}` | {measured} | {baseline} | {delta} "
                     f"| {verdict} |")
    lines.append("")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    """Run the gate; see the module docstring for semantics and exit codes."""
    parser = argparse.ArgumentParser(
        description="Fail when the smoke benchmarks regressed past tolerance.")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES,
                        help="committed baselines file")
    parser.add_argument("--output", type=Path, default=DEFAULT_REPORT,
                        help="where to write the fresh numbers (CI artifact)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override the baselines file's benchmark scale")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baselines file's relative tolerance")
    parser.add_argument("--update", action="store_true",
                        help="write measured values back as the new baselines")
    parser.add_argument("--summary", type=Path, nargs="?", const=None,
                        default=argparse.SUPPRESS, metavar="PATH",
                        help="append a markdown comparison table to PATH "
                             "(default: $GITHUB_STEP_SUMMARY, or stdout "
                             "when that is unset)")
    parser.add_argument("--inject-slowdown", type=float, default=0.0,
                        metavar="SECONDS",
                        help="slow every Higgs.insert_batch by SECONDS first "
                             "(verifies the gate trips)")
    parser.add_argument("--inject-read-tail", type=float, default=0.0,
                        metavar="SECONDS",
                        help=f"slow every {READ_TAIL_EVERY}th "
                             f"Higgs.query_batch by SECONDS first (verifies "
                             f"the p99/p50 latency gate trips)")
    parser.add_argument("--inject-admission-squeeze", action="store_true",
                        help="shrink the drop-policy admission queue 32x "
                             "first (verifies the shed-fraction gate trips)")
    args = parser.parse_args(argv)

    try:
        spec = json.loads(args.baselines.read_text(encoding="utf-8"))
        gated: Dict[str, dict] = spec["metrics"]
        scale = float(args.scale if args.scale is not None else spec["scale"])
        tolerance = float(args.tolerance if args.tolerance is not None
                          else spec["tolerance"])
        for name, entry in gated.items():
            float(entry["value"])
            if str(entry.get("direction", "higher")) not in ("higher",
                                                             "lower"):
                raise ValueError(f"metric {name!r}: unknown direction "
                                 f"{entry['direction']!r}")
    except FileNotFoundError:
        if not args.update:
            print(f"error: baselines file {args.baselines} not found "
                  f"(run with --update to create it)", file=sys.stderr)
            return 2
        gated = {}
        scale = 0.1 if args.scale is None else args.scale
        tolerance = 0.30 if args.tolerance is None else args.tolerance
    except (KeyError, ValueError, TypeError) as exc:
        print(f"error: malformed baselines file {args.baselines}: {exc!r}",
              file=sys.stderr)
        return 2

    if args.inject_slowdown > 0:
        inject_slowdown(args.inject_slowdown)
        print(f"injected {args.inject_slowdown * 1e3:.1f} ms slowdown per "
              f"Higgs.insert_batch call")
    if args.inject_read_tail > 0:
        inject_read_tail(args.inject_read_tail)
        print(f"injected {args.inject_read_tail * 1e3:.1f} ms tail per "
              f"{READ_TAIL_EVERY}th Higgs.query_batch call")
    if args.inject_admission_squeeze:
        inject_admission_squeeze()
        print("injected 32x admission-queue squeeze on drop-policy engines")

    print(f"measuring smoke benchmarks at scale {scale} "
          f"(tolerance {tolerance:.0%}) ...")
    measured = run_measurements(scale)

    if args.update:
        host_cores = os.cpu_count() or 1
        metrics_spec: Dict[str, dict] = {}
        for name, extras in GATED_METRICS.items():
            value = round(measured[name], 4)
            min_cores = int(extras.get("min_cores", 0))
            if min_cores and host_cores < min_cores and name in gated:
                # This host cannot measure the metric meaningfully (it is
                # skipped by the gate here too); keep the committed value
                # from a sufficiently provisioned runner.
                value = float(gated[name]["value"])
                print(f"baseline for {name} kept at {value} "
                      f"(needs >= {min_cores} cores, host has {host_cores})")
            metrics_spec[name] = {"value": value, **extras}
        spec = {
            "scale": scale,
            "tolerance": tolerance,
            "metrics": metrics_spec,
        }
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        args.baselines.write_text(json.dumps(spec, indent=2) + "\n",
                                  encoding="utf-8")
        print(f"baselines updated: {args.baselines}")
        # Gate against what was just written — an accepted baseline refresh
        # must exit 0, not fail against the superseded values.
        gated = spec["metrics"]

    rows = compare(measured, gated, tolerance)
    width = max(len(str(row["metric"])) for row in rows)
    for row in rows:
        flag = "  " if row["ok"] else "✗ "
        kind = "gated" if row["gated"] else "info "
        bound = "<=" if row["direction"] == "lower" else ">="
        baseline = (f"baseline {row['baseline']:.3f} "
                    f"want {bound} {row['limit']:.3f}"
                    if row["limit"] is not None else "")
        if row.get("skipped"):
            baseline += f"  [{row['skipped']}]"
        value = ("missing" if row["measured"] is None
                 else f"{row['measured']:.3f}")
        print(f"{flag}[{kind}] {str(row['metric']).ljust(width)} "
              f"measured {value}  {baseline}")

    if hasattr(args, "summary"):
        markdown = render_markdown(rows, scale, tolerance)
        target = args.summary
        if target is None:
            step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
            target = Path(step_summary) if step_summary else None
        if target is None:
            print(markdown)
        else:
            with open(target, "a", encoding="utf-8") as handle:
                handle.write(markdown + "\n")
            print(f"markdown summary appended: {target}")

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps({
        "scale": scale, "tolerance": tolerance, "rows": rows,
    }, indent=2) + "\n", encoding="utf-8")
    print(f"report written: {args.output}")

    failures = [row for row in rows if row["gated"] and not row["ok"]]
    if failures:
        print(f"FAILED: {len(failures)} metric(s) regressed past "
              f"{tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
